#include "corpus/ingestion.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "analysis/transactions.h"
#include "corpus/corpus_stats.h"
#include "lexicon/world_lexicon.h"
#include "util/csv.h"
#include "util/rng.h"

namespace culevo {
namespace {

TEST(ParseRawRecipeTextTest, BlocksSeparatedByBlankLines) {
  const std::vector<RawRecipe> raw = ParseRawRecipeText(
      "# scraped 2026-07-05\n"
      "ITA\n"
      "2 cups tomatoes\n"
      "1 tbsp olive oil\n"
      "\n"
      "JPN\n"
      "1/4 cup soy sauce\n"
      "\n"
      "\n");
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[0].cuisine_code, "ITA");
  ASSERT_EQ(raw[0].ingredient_lines.size(), 2u);
  EXPECT_EQ(raw[0].ingredient_lines[1], "1 tbsp olive oil");
  EXPECT_EQ(raw[1].cuisine_code, "JPN");
}

TEST(ParseRawRecipeTextTest, EmptyAndCommentOnlyInput) {
  EXPECT_TRUE(ParseRawRecipeText("").empty());
  EXPECT_TRUE(ParseRawRecipeText("# nothing\n\n# more\n").empty());
}

TEST(IngestTest, EndToEndResolution) {
  const std::vector<RawRecipe> raw = {
      {"ITA",
       {"2 cups chopped tomatoes", "1 tbsp olive oil", "3 cloves garlic",
        "a pinch of oregano"}},
      {"JPN", {"1/4 cup soy sauce", "2 tsp grated fresh ginger"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 2u);
  EXPECT_EQ(report.recipes_in, 2u);
  EXPECT_EQ(report.recipes_ingested, 2u);
  EXPECT_EQ(report.recipes_dropped, 0u);
  EXPECT_EQ(report.lines_in, 6u);
  EXPECT_EQ(report.lines_resolved, 6u);
  EXPECT_DOUBLE_EQ(report.line_resolution_rate(), 1.0);

  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ita = CuisineFromCode("ITA").value();
  ASSERT_EQ(corpus->num_recipes_in(ita), 1u);
  const uint32_t index = corpus->recipes_of(ita)[0];
  std::vector<std::string> names;
  for (IngredientId id : corpus->ingredients_of(index)) {
    names.push_back(lexicon.name(id));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Tomato"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Olive Oil"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Garlic"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Oregano"), names.end());
}

TEST(IngestTest, UnknownCuisineAndUnresolvableRecipesDropped) {
  const std::vector<RawRecipe> raw = {
      {"ATLANTIS", {"1 cup ambrosia"}},
      {"ITA", {"2 scoops unobtainium"}},
      {"ITA", {"1 cup flour"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 1u);
  EXPECT_EQ(report.recipes_dropped, 2u);
  EXPECT_LT(report.line_resolution_rate(), 1.0);
}

TEST(IngestTest, UnresolvedMentionsRankedByFrequency) {
  const std::vector<RawRecipe> raw = {
      {"ITA", {"1 cup dragon scales", "2 cups flour"}},
      {"ITA", {"3 dragon scales", "1 cup sugar"}},
      {"ITA", {"1 moon rock", "1 cup sugar"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  ASSERT_GE(report.unresolved_mentions.size(), 2u);
  EXPECT_EQ(report.unresolved_mentions[0].first, "dragon scale");
  EXPECT_EQ(report.unresolved_mentions[0].second, 2u);
}

TEST(IngestTest, ReportIsOptional) {
  const std::vector<RawRecipe> raw = {{"ITA", {"1 cup flour"}}};
  Result<RecipeCorpus> corpus = IngestRawRecipes(raw, WorldLexicon());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 1u);
}

TEST(IngestTest, CompoundIngredientsSurviveParsing) {
  const std::vector<RawRecipe> raw = {
      {"INSC", {"2 tbsp ginger garlic paste", "1 tsp garam masala"}}};
  Result<RecipeCorpus> corpus = IngestRawRecipes(raw, WorldLexicon());
  ASSERT_TRUE(corpus.ok());
  const Lexicon& lexicon = WorldLexicon();
  std::vector<std::string> names;
  for (IngredientId id : corpus->ingredients_of(0)) {
    names.push_back(lexicon.name(id));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Ginger Garlic Paste"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Garam Masala"),
            names.end());
}

// --- IncrementalCorpus: appends must keep every derived structure exactly
// in sync with what a full rebuild would produce.

bool SameStats(const std::vector<CuisineStats>& a,
               const std::vector<CuisineStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].cuisine != b[i].cuisine ||
        a[i].num_recipes != b[i].num_recipes ||
        a[i].num_unique_ingredients != b[i].num_unique_ingredients ||
        a[i].mean_recipe_size != b[i].mean_recipe_size ||
        a[i].min_recipe_size != b[i].min_recipe_size ||
        a[i].max_recipe_size != b[i].max_recipe_size ||
        a[i].size_histogram != b[i].size_histogram) {
      return false;
    }
  }
  return true;
}

TEST(IncrementalCorpusTest, MatchesFullRebuild) {
  Rng rng(3);
  IncrementalCorpus incremental;
  RecipeCorpus::Builder reference;
  for (int i = 0; i < 400; ++i) {
    const CuisineId cuisine = static_cast<CuisineId>(rng.NextBounded(5));
    std::vector<IngredientId> ids;
    const size_t size = 1 + rng.NextBounded(8);
    for (size_t k = 0; k < size; ++k) {
      ids.push_back(static_cast<IngredientId>(rng.NextBounded(120)));
    }
    ASSERT_TRUE(incremental
                    .Add(cuisine, std::span<const IngredientId>(ids))
                    .ok());
    ASSERT_TRUE(reference.Add(cuisine, std::move(ids)).ok());
  }
  const RecipeCorpus rebuilt = reference.Build();

  EXPECT_EQ(incremental.num_recipes(), rebuilt.num_recipes());
  EXPECT_EQ(incremental.num_mentions(), rebuilt.total_mentions());
  EXPECT_TRUE(SameStats(incremental.stats(), ComputeCuisineStats(rebuilt)));
  for (int c = 0; c < kNumCuisines; ++c) {
    const CuisineId cuisine = static_cast<CuisineId>(c);
    const auto shard = incremental.recipes_of(cuisine);
    const auto expected_shard = rebuilt.recipes_of(cuisine);
    EXPECT_TRUE(std::equal(shard.begin(), shard.end(),
                           expected_shard.begin(), expected_shard.end()));
    const auto unique = incremental.UniqueIngredients(cuisine);
    const auto expected_unique = rebuilt.UniqueIngredients(cuisine);
    EXPECT_TRUE(std::equal(unique.begin(), unique.end(),
                           expected_unique.begin(), expected_unique.end()));
  }
  const auto global = incremental.UniqueIngredients();
  const auto expected_global = rebuilt.UniqueIngredients();
  EXPECT_TRUE(std::equal(global.begin(), global.end(),
                         expected_global.begin(), expected_global.end()));

  Result<RecipeCorpus> materialized = incremental.Materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_TRUE(std::equal(materialized->flat().begin(),
                         materialized->flat().end(),
                         rebuilt.flat().begin(), rebuilt.flat().end()));
}

TEST(IncrementalCorpusTest, RejectsBadInput) {
  IncrementalCorpus incremental;
  EXPECT_FALSE(incremental.Add(kNumCuisines, std::vector<IngredientId>{1})
                   .ok());
  EXPECT_FALSE(incremental.Add(0, std::vector<IngredientId>{}).ok());
  EXPECT_EQ(incremental.num_recipes(), 0u);
}

TEST(IncrementalCorpusTest, SeedsFromCorpusAndExtends) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1, 2, 3}).ok());
  ASSERT_TRUE(builder.Add(1, {2, 4}).ok());
  const RecipeCorpus base = builder.Build();

  IncrementalCorpus incremental = IncrementalCorpus::FromCorpus(base);
  EXPECT_EQ(incremental.num_recipes(), 2u);
  EXPECT_TRUE(SameStats(incremental.stats(), ComputeCuisineStats(base)));

  ASSERT_TRUE(incremental.Add(0, std::vector<IngredientId>{5, 3}).ok());
  EXPECT_EQ(incremental.num_recipes(), 3u);
  EXPECT_EQ(incremental.stats_of(0).num_recipes, 2u);
  EXPECT_EQ(incremental.stats_of(0).num_unique_ingredients, 4u);

  // The derived structures must equal a from-scratch build of the same
  // recipe sequence.
  RecipeCorpus::Builder all;
  ASSERT_TRUE(all.Add(0, {1, 2, 3}).ok());
  ASSERT_TRUE(all.Add(1, {2, 4}).ok());
  ASSERT_TRUE(all.Add(0, {5, 3}).ok());
  const RecipeCorpus rebuilt = all.Build();
  EXPECT_TRUE(SameStats(incremental.stats(), ComputeCuisineStats(rebuilt)));
  const auto unique = incremental.UniqueIngredients();
  const auto expected = rebuilt.UniqueIngredients();
  EXPECT_TRUE(
      std::equal(unique.begin(), unique.end(), expected.begin(),
                 expected.end()));
}

TEST(IncrementalCorpusTest, TransactionDeltasDrainOnce) {
  IncrementalCorpus incremental;
  ASSERT_TRUE(incremental.Add(2, std::vector<IngredientId>{9, 4}).ok());
  ASSERT_TRUE(incremental.Add(2, std::vector<IngredientId>{7}).ok());
  ASSERT_TRUE(incremental.Add(3, std::vector<IngredientId>{1}).ok());

  TransactionSet standing;
  EXPECT_EQ(AppendNewTransactions(incremental, 2, &standing), 2u);
  ASSERT_EQ(standing.size(), 2u);
  EXPECT_EQ(standing.transaction(0), (std::vector<Item>{4, 9}));
  EXPECT_EQ(standing.transaction(1), (std::vector<Item>{7}));

  // Drained: a second drain is empty until new recipes arrive.
  EXPECT_EQ(AppendNewTransactions(incremental, 2, &standing), 0u);
  ASSERT_TRUE(incremental.Add(2, std::vector<IngredientId>{5}).ok());
  EXPECT_EQ(AppendNewTransactions(incremental, 2, &standing), 1u);
  EXPECT_EQ(standing.size(), 3u);
}

TEST(IncrementalCorpusTest, SnapshotRoundTripsAfterAppends) {
  const std::string path =
      testing::TempDir() + "culevo_incremental_snapshot.bin";
  SnapshotWriteOptions write;
  write.sync = false;

  IncrementalCorpus incremental;
  Rng rng(13);
  const auto add_batch = [&](int count) {
    for (int i = 0; i < count; ++i) {
      std::vector<IngredientId> ids;
      const size_t size = 1 + rng.NextBounded(6);
      for (size_t k = 0; k < size; ++k) {
        ids.push_back(static_cast<IngredientId>(rng.NextBounded(80)));
      }
      ASSERT_TRUE(
          incremental
              .Add(static_cast<CuisineId>(rng.NextBounded(4)),
                   std::span<const IngredientId>(ids))
              .ok());
    }
  };

  add_batch(100);
  ASSERT_TRUE(incremental.WriteSnapshot(path, write).ok());
  // Second write with appended batches exercises the dirty-section path:
  // the columns extend, only touched cuisines re-serialize.
  add_batch(40);
  ASSERT_TRUE(incremental.WriteSnapshot(path, write).ok());

  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Result<RecipeCorpus> materialized = incremental.Materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(loaded->corpus.num_recipes(), materialized->num_recipes());
  EXPECT_TRUE(SameStats(loaded->stats,
                        ComputeCuisineStats(materialized.value())));
  EXPECT_TRUE(std::equal(
      loaded->corpus.flat().begin(), loaded->corpus.flat().end(),
      materialized->flat().begin(), materialized->flat().end()));
  EXPECT_TRUE(SameStats(loaded->stats, incremental.stats()));
  std::remove(path.c_str());
}

TEST(IncrementalCorpusTest, DeltaSnapshotIdenticalToFreshSnapshot) {
  const std::string incremental_path =
      testing::TempDir() + "culevo_delta_snapshot.bin";
  const std::string fresh_path =
      testing::TempDir() + "culevo_fresh_snapshot.bin";
  SnapshotWriteOptions write;
  write.sync = false;

  IncrementalCorpus incremental;
  ASSERT_TRUE(incremental.Add(0, std::vector<IngredientId>{3, 1}).ok());
  ASSERT_TRUE(incremental.Add(4, std::vector<IngredientId>{2}).ok());
  ASSERT_TRUE(incremental.WriteSnapshot(incremental_path, write).ok());
  ASSERT_TRUE(incremental.Add(0, std::vector<IngredientId>{8}).ok());
  ASSERT_TRUE(incremental.WriteSnapshot(incremental_path, write).ok());

  // A from-scratch snapshot of the same corpus must be byte-identical —
  // cached-section reuse is not allowed to change the serialization.
  Result<RecipeCorpus> materialized = incremental.Materialize();
  ASSERT_TRUE(materialized.ok());
  ASSERT_TRUE(
      WriteCorpusSnapshot(fresh_path, materialized.value(), write).ok());
  Result<std::string> delta_bytes = ReadFileToString(incremental_path);
  Result<std::string> fresh_bytes = ReadFileToString(fresh_path);
  ASSERT_TRUE(delta_bytes.ok());
  ASSERT_TRUE(fresh_bytes.ok());
  EXPECT_EQ(delta_bytes.value(), fresh_bytes.value());
  std::remove(incremental_path.c_str());
  std::remove(fresh_path.c_str());
}

}  // namespace
}  // namespace culevo

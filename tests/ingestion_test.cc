#include "corpus/ingestion.h"

#include <gtest/gtest.h>

#include "lexicon/world_lexicon.h"

namespace culevo {
namespace {

TEST(ParseRawRecipeTextTest, BlocksSeparatedByBlankLines) {
  const std::vector<RawRecipe> raw = ParseRawRecipeText(
      "# scraped 2026-07-05\n"
      "ITA\n"
      "2 cups tomatoes\n"
      "1 tbsp olive oil\n"
      "\n"
      "JPN\n"
      "1/4 cup soy sauce\n"
      "\n"
      "\n");
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[0].cuisine_code, "ITA");
  ASSERT_EQ(raw[0].ingredient_lines.size(), 2u);
  EXPECT_EQ(raw[0].ingredient_lines[1], "1 tbsp olive oil");
  EXPECT_EQ(raw[1].cuisine_code, "JPN");
}

TEST(ParseRawRecipeTextTest, EmptyAndCommentOnlyInput) {
  EXPECT_TRUE(ParseRawRecipeText("").empty());
  EXPECT_TRUE(ParseRawRecipeText("# nothing\n\n# more\n").empty());
}

TEST(IngestTest, EndToEndResolution) {
  const std::vector<RawRecipe> raw = {
      {"ITA",
       {"2 cups chopped tomatoes", "1 tbsp olive oil", "3 cloves garlic",
        "a pinch of oregano"}},
      {"JPN", {"1/4 cup soy sauce", "2 tsp grated fresh ginger"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 2u);
  EXPECT_EQ(report.recipes_in, 2u);
  EXPECT_EQ(report.recipes_ingested, 2u);
  EXPECT_EQ(report.recipes_dropped, 0u);
  EXPECT_EQ(report.lines_in, 6u);
  EXPECT_EQ(report.lines_resolved, 6u);
  EXPECT_DOUBLE_EQ(report.line_resolution_rate(), 1.0);

  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ita = CuisineFromCode("ITA").value();
  ASSERT_EQ(corpus->num_recipes_in(ita), 1u);
  const uint32_t index = corpus->recipes_of(ita)[0];
  std::vector<std::string> names;
  for (IngredientId id : corpus->ingredients_of(index)) {
    names.push_back(lexicon.name(id));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Tomato"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Olive Oil"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Garlic"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Oregano"), names.end());
}

TEST(IngestTest, UnknownCuisineAndUnresolvableRecipesDropped) {
  const std::vector<RawRecipe> raw = {
      {"ATLANTIS", {"1 cup ambrosia"}},
      {"ITA", {"2 scoops unobtainium"}},
      {"ITA", {"1 cup flour"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 1u);
  EXPECT_EQ(report.recipes_dropped, 2u);
  EXPECT_LT(report.line_resolution_rate(), 1.0);
}

TEST(IngestTest, UnresolvedMentionsRankedByFrequency) {
  const std::vector<RawRecipe> raw = {
      {"ITA", {"1 cup dragon scales", "2 cups flour"}},
      {"ITA", {"3 dragon scales", "1 cup sugar"}},
      {"ITA", {"1 moon rock", "1 cup sugar"}},
  };
  IngestionReport report;
  Result<RecipeCorpus> corpus =
      IngestRawRecipes(raw, WorldLexicon(), &report);
  ASSERT_TRUE(corpus.ok());
  ASSERT_GE(report.unresolved_mentions.size(), 2u);
  EXPECT_EQ(report.unresolved_mentions[0].first, "dragon scale");
  EXPECT_EQ(report.unresolved_mentions[0].second, 2u);
}

TEST(IngestTest, ReportIsOptional) {
  const std::vector<RawRecipe> raw = {{"ITA", {"1 cup flour"}}};
  Result<RecipeCorpus> corpus = IngestRawRecipes(raw, WorldLexicon());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 1u);
}

TEST(IngestTest, CompoundIngredientsSurviveParsing) {
  const std::vector<RawRecipe> raw = {
      {"INSC", {"2 tbsp ginger garlic paste", "1 tsp garam masala"}}};
  Result<RecipeCorpus> corpus = IngestRawRecipes(raw, WorldLexicon());
  ASSERT_TRUE(corpus.ok());
  const Lexicon& lexicon = WorldLexicon();
  std::vector<std::string> names;
  for (IngredientId id : corpus->ingredients_of(0)) {
    names.push_back(lexicon.name(id));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Ginger Garlic Paste"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Garam Masala"),
            names.end());
}

}  // namespace
}  // namespace culevo

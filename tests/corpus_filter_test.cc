#include "corpus/corpus_filter.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

RecipeCorpus FilterTestCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(0, {1, 2}).ok());
  EXPECT_TRUE(builder.Add(0, {2, 3}).ok());
  EXPECT_TRUE(builder.Add(1, {1, 4}).ok());
  EXPECT_TRUE(builder.Add(2, {5, 6}).ok());
  return builder.Build();
}

TEST(FilterCorpusTest, KeepsMatchingRecipes) {
  const RecipeCorpus filtered =
      FilterCorpus(FilterTestCorpus(), [](const RecipeView& recipe) {
        return recipe.size() == 2 && recipe.ingredients[0] == 1;
      });
  EXPECT_EQ(filtered.num_recipes(), 2u);
  EXPECT_EQ(filtered.num_recipes_in(0), 1u);
  EXPECT_EQ(filtered.num_recipes_in(1), 1u);
}

TEST(SelectCuisinesTest, KeepsOnlyRequested) {
  const RecipeCorpus selected =
      SelectCuisines(FilterTestCorpus(), {0, 2});
  EXPECT_EQ(selected.num_recipes(), 3u);
  EXPECT_EQ(selected.num_recipes_in(0), 2u);
  EXPECT_EQ(selected.num_recipes_in(1), 0u);
  EXPECT_EQ(selected.num_recipes_in(2), 1u);
}

TEST(RecipesContainingTest, FindsIngredient) {
  const RecipeCorpus with_2 = RecipesContaining(FilterTestCorpus(), 2);
  EXPECT_EQ(with_2.num_recipes(), 2u);
  const RecipeCorpus with_9 = RecipesContaining(FilterTestCorpus(), 9);
  EXPECT_EQ(with_9.num_recipes(), 0u);
}

TEST(SampleCorpusTest, FullFractionKeepsEverything) {
  const RecipeCorpus sampled = SampleCorpus(FilterTestCorpus(), 1.0, 3);
  EXPECT_EQ(sampled.num_recipes(), 4u);
}

TEST(SampleCorpusTest, DeterministicAndRoughlyProportional) {
  RecipeCorpus::Builder builder;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        builder.Add(0, {static_cast<IngredientId>(i % 50), 60}).ok());
  }
  const RecipeCorpus big = builder.Build();
  const RecipeCorpus a = SampleCorpus(big, 0.3, 7);
  const RecipeCorpus b = SampleCorpus(big, 0.3, 7);
  EXPECT_EQ(a.num_recipes(), b.num_recipes());
  EXPECT_NEAR(static_cast<double>(a.num_recipes()), 300.0, 60.0);
}

TEST(SplitHalvesTest, PartitionsEveryCuisine) {
  RecipeCorpus::Builder builder;
  for (int i = 0; i < 101; ++i) {
    ASSERT_TRUE(builder.Add(i % 3, {static_cast<IngredientId>(i), 200}).ok());
  }
  const RecipeCorpus corpus = builder.Build();
  const CorpusSplit split = SplitHalves(corpus, 11);
  EXPECT_EQ(split.first.num_recipes() + split.second.num_recipes(),
            corpus.num_recipes());
  for (int c = 0; c < 3; ++c) {
    const CuisineId cuisine = static_cast<CuisineId>(c);
    const size_t total = corpus.num_recipes_in(cuisine);
    const size_t first = split.first.num_recipes_in(cuisine);
    EXPECT_NEAR(static_cast<double>(first),
                static_cast<double>(total) / 2.0, 1.0);
  }
}

TEST(SplitHalvesTest, HalvesAreDisjointByMentions) {
  // Give every recipe a unique marker ingredient, then verify no marker
  // appears in both halves.
  RecipeCorpus::Builder builder;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        builder.Add(0, {static_cast<IngredientId>(i), 100, 101}).ok());
  }
  const CorpusSplit split = SplitHalves(builder.Build(), 5);
  std::vector<bool> in_first(60, false);
  for (uint32_t r = 0; r < split.first.num_recipes(); ++r) {
    in_first[split.first.ingredients_of(r)[0]] = true;
  }
  for (uint32_t r = 0; r < split.second.num_recipes(); ++r) {
    EXPECT_FALSE(in_first[split.second.ingredients_of(r)[0]]);
  }
}

}  // namespace
}  // namespace culevo

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace culevo {
namespace {

// The registry is process-global: every test disarms everything on the way
// out so armed points never leak into later cases (or other suites linked
// into the same binary).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Get().DisarmAll(); }
};

Status GuardedOperation() {
  CULEVO_FAILPOINT("test.guarded.op");
  return Status::Ok();
}

TEST_F(FailpointTest, UnarmedIsOk) {
  EXPECT_TRUE(FailpointCheck("test.never.armed").ok());
  EXPECT_EQ(Failpoints::Get().HitCount("test.never.armed"), 0);
}

TEST_F(FailpointTest, ArmedFiresDefaultIoError) {
  Failpoints::Get().Arm("test.site");
  const Status status = FailpointCheck("test.site");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // Fires on every hit until disarmed.
  EXPECT_FALSE(FailpointCheck("test.site").ok());
}

TEST_F(FailpointTest, CustomStatusInjected) {
  Failpoints::ArmSpec spec;
  spec.status = Status::NotFound("synthetic miss");
  Failpoints::Get().Arm("test.site", spec);
  const Status status = FailpointCheck("test.site");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "synthetic miss");
}

TEST_F(FailpointTest, SkipPassesEarlyHitsThrough) {
  Failpoints::ArmSpec spec;
  spec.skip = 2;
  Failpoints::Get().Arm("test.site", spec);
  EXPECT_TRUE(FailpointCheck("test.site").ok());
  EXPECT_TRUE(FailpointCheck("test.site").ok());
  EXPECT_FALSE(FailpointCheck("test.site").ok());
}

TEST_F(FailpointTest, FiresBudgetExhausts) {
  Failpoints::ArmSpec spec;
  spec.fires = 1;
  Failpoints::Get().Arm("test.site", spec);
  EXPECT_FALSE(FailpointCheck("test.site").ok());
  EXPECT_TRUE(FailpointCheck("test.site").ok());
  EXPECT_TRUE(FailpointCheck("test.site").ok());
}

TEST_F(FailpointTest, HitCountCountsPassesAndInjections) {
  Failpoints::ArmSpec spec;
  spec.skip = 1;
  Failpoints::Get().Arm("test.site", spec);
  (void)FailpointCheck("test.site");  // pass-through
  (void)FailpointCheck("test.site");  // injection
  EXPECT_EQ(Failpoints::Get().HitCount("test.site"), 2);
}

TEST_F(FailpointTest, DisarmStopsInjection) {
  Failpoints::Get().Arm("test.site");
  EXPECT_FALSE(FailpointCheck("test.site").ok());
  Failpoints::Get().Disarm("test.site");
  EXPECT_TRUE(FailpointCheck("test.site").ok());
  // Disarming an unknown name is a no-op.
  Failpoints::Get().Disarm("test.not.a.site");
}

TEST_F(FailpointTest, RearmResetsCounters) {
  Failpoints::ArmSpec spec;
  spec.fires = 1;
  Failpoints::Get().Arm("test.site", spec);
  EXPECT_FALSE(FailpointCheck("test.site").ok());
  EXPECT_TRUE(FailpointCheck("test.site").ok());  // budget spent
  Failpoints::Get().Arm("test.site", spec);
  EXPECT_FALSE(FailpointCheck("test.site").ok());  // budget refreshed
}

TEST_F(FailpointTest, MacroPropagatesInjectedStatus) {
  EXPECT_TRUE(GuardedOperation().ok());
  Failpoints::Get().Arm("test.guarded.op");
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kIOError);
  Failpoints::Get().DisarmAll();
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailpointTest, ArmFromSpecParsesEntries) {
  ASSERT_TRUE(Failpoints::Get()
                  .ArmFromSpec("test.a; test.b=2 , test.c*1 ;test.d=1*2")
                  .ok());
  EXPECT_FALSE(FailpointCheck("test.a").ok());
  // test.b skips two hits.
  EXPECT_TRUE(FailpointCheck("test.b").ok());
  EXPECT_TRUE(FailpointCheck("test.b").ok());
  EXPECT_FALSE(FailpointCheck("test.b").ok());
  // test.c fires once.
  EXPECT_FALSE(FailpointCheck("test.c").ok());
  EXPECT_TRUE(FailpointCheck("test.c").ok());
  // test.d skips one then fires twice.
  EXPECT_TRUE(FailpointCheck("test.d").ok());
  EXPECT_FALSE(FailpointCheck("test.d").ok());
  EXPECT_FALSE(FailpointCheck("test.d").ok());
  EXPECT_TRUE(FailpointCheck("test.d").ok());
}

TEST_F(FailpointTest, ArmFromSpecRejectsMalformedEntries) {
  EXPECT_EQ(Failpoints::Get().ArmFromSpec("test.x=notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Failpoints::Get().ArmFromSpec("=3").code(),
            StatusCode::kInvalidArgument);
  // Earlier entries in a partially-bad spec stay armed.
  EXPECT_FALSE(Failpoints::Get().ArmFromSpec("test.ok; test.bad=x").ok());
  EXPECT_FALSE(FailpointCheck("test.ok").ok());
}

// A malformed entry anywhere in the spec must not take down the process
// (the constructor path parses the CULEVO_FAILPOINTS environment variable
// before main), and must not shadow well-formed entries *after* it: the
// bad entry is skipped with a warning, counted in failpoint.parse_errors,
// and everything parseable still arms.
TEST_F(FailpointTest, MalformedEntryIsSkippedCountedAndNonFatal) {
  obs::Counter* parse_errors =
      obs::MetricsRegistry::Get().counter("failpoint.parse_errors");
  const int64_t errors0 = parse_errors->Value();

  const Status status =
      Failpoints::Get().ArmFromSpec("test.bad=x; test.after*1; *2");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_errors->Value() - errors0, 2);

  // The entry after the malformed one armed anyway.
  EXPECT_FALSE(FailpointCheck("test.after").ok());
  EXPECT_TRUE(FailpointCheck("test.after").ok());  // fires budget of 1
  // The malformed names never armed.
  EXPECT_TRUE(FailpointCheck("test.bad").ok());
}

TEST_F(FailpointTest, DisarmAllRestoresFastPath) {
  Failpoints::Get().Arm("test.site");
  Failpoints::Get().DisarmAll();
  EXPECT_TRUE(FailpointCheck("test.site").ok());
  EXPECT_EQ(Failpoints::Get().HitCount("test.site"), 0);
}

}  // namespace
}  // namespace culevo

// Fuzz-style robustness tests: every text parser must return a Status (or
// a best-effort value) on arbitrary byte soup — never crash, hang, or
// corrupt memory.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "corpus/corpus_io.h"
#include "corpus/ingestion.h"
#include "lexicon/lexicon_io.h"
#include "lexicon/world_lexicon.h"
#include "text/ingredient_parser.h"
#include "text/normalize.h"
#include "util/csv.h"
#include "util/rng.h"

namespace culevo {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBounded(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->NextBounded(256)));
  }
  return out;
}

/// Byte soup biased toward the parsers' structural characters so deeper
/// code paths get exercised.
std::string StructuredNoise(Rng* rng, size_t max_len) {
  static const char kAlphabet[] = "abAB12 \t\n\r\";,;/.#\\\xc3\xa9\xf0";
  const size_t len = rng->NextBounded(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, DsvParserNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::string input = round % 2 == 0 ? RandomBytes(&rng, 300)
                                             : StructuredNoise(&rng, 300);
    Result<DsvTable> parsed = ParseDsv(input, ',');
    if (parsed.ok()) {
      // Reserialize must also succeed and reparse to the same table.
      const std::string text = FormatDsv(parsed.value(), ',');
      Result<DsvTable> reparsed = ParseDsv(text, ',');
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(reparsed->rows, parsed->rows);
    }
  }
}

TEST_P(ParserRobustnessTest, LexiconParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x1111);
  for (int round = 0; round < 200; ++round) {
    const std::string input = StructuredNoise(&rng, 300);
    (void)ParseLexiconTsv(input);  // Status either way; must not crash.
  }
}

TEST_P(ParserRobustnessTest, CorpusParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x2222);
  for (int round = 0; round < 100; ++round) {
    const std::string input = StructuredNoise(&rng, 300);
    (void)ParseCorpusTsv(input, WorldLexicon(), round % 2 == 0);
  }
}

TEST_P(ParserRobustnessTest, IngredientLineParserTotal) {
  Rng rng(GetParam() ^ 0x3333);
  for (int round = 0; round < 300; ++round) {
    const std::string input = round % 2 == 0 ? RandomBytes(&rng, 120)
                                             : StructuredNoise(&rng, 120);
    const ParsedIngredientLine parsed = ParseIngredientLine(input);
    // The mention must be fully normalized output.
    for (char c : parsed.mention) {
      EXPECT_TRUE(IsNormalizedChar(c)) << "raw byte in mention";
    }
    if (parsed.quantity.has_value()) {
      EXPECT_TRUE(std::isfinite(*parsed.quantity));
      EXPECT_GE(*parsed.quantity, 0.0);
    }
  }
}

TEST_P(ParserRobustnessTest, RawRecipeParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x4444);
  for (int round = 0; round < 100; ++round) {
    const std::vector<RawRecipe> raw =
        ParseRawRecipeText(StructuredNoise(&rng, 400));
    // Whatever was parsed must ingest without crashing.
    (void)IngestRawRecipes(raw, WorldLexicon());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace culevo

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace culevo {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter]() { ++counter; });
    }
  }  // Destructor joins.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace culevo

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace culevo {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  pool.ParallelFor(500, [&hits](size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

// Regression test for the ParallelFor use-after-free: the iteration
// lambdas capture `fn` (a caller-frame object) by reference, so an early
// rethrow from the first failing future would let still-queued tasks run
// against a destroyed frame. The fix drains every future before
// rethrowing, which this test observes as "all iterations ran".
TEST(ThreadPoolTest, ParallelForThrowingBodyRunsAllIterations) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  const size_t count = 128;
  try {
    pool.ParallelFor(count, [&started](size_t i) {
      ++started;
      if (i % 2 == 0) {
        throw std::runtime_error("iteration " + std::to_string(i));
      }
    });
    FAIL() << "ParallelFor must propagate the body's exception";
  } catch (const std::runtime_error&) {
    // Expected: one of the even iterations' exceptions.
  }
  // Every iteration must have been accounted for before the rethrow; a
  // short count means tasks were abandoned while still referencing fn.
  EXPECT_EQ(started.load(), static_cast<int>(count));
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  // Only iteration 0 throws, so the propagated exception is unambiguous.
  try {
    pool.ParallelFor(64, [](size_t i) {
      if (i == 0) throw std::runtime_error("first");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, ParallelForUsableAfterThrow) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(16, [](size_t) { throw 42; }), int);
  // The pool must stay healthy for subsequent work.
  std::atomic<int> hits{0};
  pool.ParallelFor(100, [&hits](size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

// Regression test for the worker_idle_ms off-by-one: the idle sample used
// to be recorded before task() while tasks_executed was incremented after
// it, so a snapshot taken right after draining futures could observe one
// more idle sample than executed tasks. Both are now recorded before the
// task body, so any future-synchronized snapshot sees matched deltas.
TEST(ThreadPoolTest, IdleSamplesPairOneToOneWithExecutedTasks) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter* executed = registry.counter("threadpool.tasks_executed");
  obs::Histogram* idle = registry.histogram("threadpool.worker_idle_ms");

  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const int64_t executed_before = executed->Value();
    const int64_t idle_before = idle->Snapshot().count;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([]() {}));
    }
    for (auto& f : futures) f.get();
    // Every completed future's task recorded its idle sample and executed
    // increment before running, so the deltas must match exactly. (No
    // other pool is active in this test binary's process at this point.)
    EXPECT_EQ(executed->Value() - executed_before, 32);
    EXPECT_EQ(idle->Snapshot().count - idle_before, 32);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter]() { ++counter; });
    }
  }  // Destructor joins.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace culevo

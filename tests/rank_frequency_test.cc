#include "analysis/rank_frequency.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

TEST(RankFrequencyTest, FromCountsNormalizesAndSorts) {
  const RankFrequency rf = RankFrequency::FromCounts({10, 50, 20}, 100);
  ASSERT_EQ(rf.size(), 3u);
  EXPECT_DOUBLE_EQ(rf.at_rank(1), 0.5);
  EXPECT_DOUBLE_EQ(rf.at_rank(2), 0.2);
  EXPECT_DOUBLE_EQ(rf.at_rank(3), 0.1);
}

TEST(RankFrequencyTest, FromFrequenciesSortsDescending) {
  const RankFrequency rf =
      RankFrequency::FromFrequencies({0.1, 0.9, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(rf.at_rank(1), 0.9);
  EXPECT_DOUBLE_EQ(rf.at_rank(2), 0.5);
  EXPECT_DOUBLE_EQ(rf.at_rank(3), 0.5);
  EXPECT_DOUBLE_EQ(rf.at_rank(4), 0.1);
}

TEST(RankFrequencyTest, EmptyCurve) {
  const RankFrequency rf;
  EXPECT_TRUE(rf.empty());
  EXPECT_EQ(rf.size(), 0u);
}

TEST(AverageRankFrequenciesTest, PositionWiseMean) {
  const RankFrequency a = RankFrequency::FromFrequencies({0.8, 0.4});
  const RankFrequency b = RankFrequency::FromFrequencies({0.6, 0.2});
  const RankFrequency avg = AverageRankFrequencies({a, b});
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg.at_rank(1), 0.7);
  EXPECT_DOUBLE_EQ(avg.at_rank(2), 0.3);
}

TEST(AverageRankFrequenciesTest, UnequalLengthsZeroPadded) {
  const RankFrequency a = RankFrequency::FromFrequencies({1.0, 0.5, 0.25});
  const RankFrequency b = RankFrequency::FromFrequencies({0.5});
  const RankFrequency avg = AverageRankFrequencies({a, b});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.at_rank(1), 0.75);
  EXPECT_DOUBLE_EQ(avg.at_rank(2), 0.25);
  EXPECT_DOUBLE_EQ(avg.at_rank(3), 0.125);
}

TEST(RankFrequencyTest, FromSortedPreservesGivenOrder) {
  // FromSorted trusts the caller's rank order and must not re-sort, even
  // for non-monotone values (derived/averaged curves).
  const RankFrequency rf = RankFrequency::FromSorted({0.2, 0.8, 0.5});
  ASSERT_EQ(rf.size(), 3u);
  EXPECT_DOUBLE_EQ(rf.at_rank(1), 0.2);
  EXPECT_DOUBLE_EQ(rf.at_rank(2), 0.8);
  EXPECT_DOUBLE_EQ(rf.at_rank(3), 0.5);
}

// Regression: averaging used to route its result through the re-sorting
// FromFrequencies factory, which silently reshuffled positions whenever
// the position-wise average was not monotone. Rank r of the average must
// always correspond to rank r of the inputs.
TEST(AverageRankFrequenciesTest, KeepsPositionWiseOrderWithoutResorting) {
  // Non-monotone inputs model derived curves (e.g. averages of averages).
  const RankFrequency a = RankFrequency::FromSorted({0.1, 0.9, 0.3});
  const RankFrequency b = RankFrequency::FromSorted({0.3, 0.1});
  const RankFrequency avg = AverageRankFrequencies({a, b});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.at_rank(1), 0.2);    // (0.1 + 0.3) / 2
  EXPECT_DOUBLE_EQ(avg.at_rank(2), 0.5);    // (0.9 + 0.1) / 2
  EXPECT_DOUBLE_EQ(avg.at_rank(3), 0.15);   // (0.3 + 0.0) / 2, zero-padded
}

TEST(AverageRankFrequenciesTest, ZeroPadDividesByTotalCurveCount) {
  // The average at ranks beyond a short curve divides by the number of
  // curves, not the number of curves reaching that rank.
  const RankFrequency a = RankFrequency::FromFrequencies({0.9, 0.6, 0.3});
  const RankFrequency b = RankFrequency::FromFrequencies({0.5});
  const RankFrequency c = RankFrequency::FromFrequencies({0.4, 0.3});
  const RankFrequency avg = AverageRankFrequencies({a, b, c});
  ASSERT_EQ(avg.size(), 3u);
  EXPECT_DOUBLE_EQ(avg.at_rank(1), 0.6);            // (0.9+0.5+0.4)/3
  EXPECT_DOUBLE_EQ(avg.at_rank(2), 0.3);            // (0.6+0.0+0.3)/3
  EXPECT_DOUBLE_EQ(avg.at_rank(3), 0.3 / 3.0);      // (0.3+0.0+0.0)/3
}

TEST(AverageRankFrequenciesTest, EmptyInputs) {
  EXPECT_TRUE(AverageRankFrequencies({}).empty());
  EXPECT_TRUE(
      AverageRankFrequencies({RankFrequency(), RankFrequency()}).empty());
}

TEST(AverageRankFrequenciesTest, SingleCurveIsIdentity) {
  const RankFrequency a = RankFrequency::FromFrequencies({0.9, 0.1});
  const RankFrequency avg = AverageRankFrequencies({a});
  EXPECT_EQ(avg.values(), a.values());
}

}  // namespace
}  // namespace culevo

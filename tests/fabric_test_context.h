// The small deterministic cuisine context shared by the fabric tests and
// the fabric_worker helper binary. The golden results computed in-process
// by the tests and the shard journals written by spawned workers must
// describe the SAME run (identical context hash in the manifest), so the
// definition lives here exactly once.

#ifndef CULEVO_TESTS_FABRIC_TEST_CONTEXT_H_
#define CULEVO_TESTS_FABRIC_TEST_CONTEXT_H_

#include "core/simulation.h"

namespace culevo {

inline CuisineContext FabricTestContext() {
  CuisineContext context;
  context.cuisine = 0;
  for (IngredientId id = 0; id < 100; ++id) {
    context.ingredients.push_back(id);
  }
  context.popularity.assign(100, 0.5);
  context.mean_recipe_size = 6;
  context.target_recipes = 160;
  context.phi = 0.5;
  return context;
}

}  // namespace culevo

#endif  // CULEVO_TESTS_FABRIC_TEST_CONTEXT_H_

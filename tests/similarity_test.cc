#include "analysis/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace culevo {
namespace {

RecipeCorpus ThreeCuisines() {
  RecipeCorpus::Builder builder;
  // Cuisines 0 and 1 share ingredients; cuisine 2 is disjoint.
  EXPECT_TRUE(builder.Add(0, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(0, {1, 2}).ok());
  EXPECT_TRUE(builder.Add(1, {1, 2, 4}).ok());
  EXPECT_TRUE(builder.Add(1, {2, 3}).ok());
  EXPECT_TRUE(builder.Add(2, {10, 11, 12}).ok());
  return builder.Build();
}

TEST(UsageDistanceTest, SelfIsZeroDisjointIsOne) {
  const RecipeCorpus corpus = ThreeCuisines();
  EXPECT_NEAR(IngredientUsageDistance(corpus, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(IngredientUsageDistance(corpus, 0, 2), 1.0, 1e-12);
  const double near = IngredientUsageDistance(corpus, 0, 1);
  EXPECT_GT(near, 0.0);
  EXPECT_LT(near, 0.5);
}

TEST(UsageDistanceTest, SymmetricMatrix) {
  const auto matrix = IngredientUsageDistanceMatrix(ThreeCuisines());
  ASSERT_EQ(matrix.size(), static_cast<size_t>(kNumCuisines));
  for (int i = 0; i < kNumCuisines; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i][i], 0.0);
    for (int j = 0; j < kNumCuisines; ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
    }
  }
}

TEST(UsageDistanceTest, EmptyCuisinesAreFar) {
  const auto matrix = IngredientUsageDistanceMatrix(ThreeCuisines());
  // Cuisine 5 has no recipes: distance 1 to populated cuisines.
  EXPECT_DOUBLE_EQ(matrix[5][0], 1.0);
  // Two empty cuisines: both zero vectors -> distance 0.
  EXPECT_DOUBLE_EQ(matrix[5][6], 0.0);
}

TEST(NearestCuisinesTest, OrdersByDistance) {
  const RecipeCorpus corpus = ThreeCuisines();
  const std::vector<CuisineNeighbor> neighbors =
      NearestCuisines(corpus, 0, 5);
  ASSERT_EQ(neighbors.size(), 2u);  // Only cuisines 1 and 2 are populated.
  EXPECT_EQ(neighbors[0].cuisine, 1);
  EXPECT_EQ(neighbors[1].cuisine, 2);
  EXPECT_LT(neighbors[0].distance, neighbors[1].distance);
}

TEST(UsageProfileTest, SparseProfileMatchesDenseDefinition) {
  const RecipeCorpus corpus = ThreeCuisines();
  const CuisineUsageProfile profile = BuildUsageProfile(corpus, 0);
  // Cuisine 0: ingredient 1 in 2/2 recipes, 2 in 2/2, 3 in 1/2.
  ASSERT_EQ(profile.ingredients, (std::vector<IngredientId>{1, 2, 3}));
  ASSERT_EQ(profile.fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.fractions[0], 1.0);
  EXPECT_DOUBLE_EQ(profile.fractions[1], 1.0);
  EXPECT_DOUBLE_EQ(profile.fractions[2], 0.5);
  EXPECT_DOUBLE_EQ(profile.norm, std::sqrt(1.0 + 1.0 + 0.25));
  EXPECT_TRUE(BuildUsageProfile(corpus, 5).empty());
}

// The cached-profile distance must be bit-identical to the per-query
// IngredientUsageDistance it replaced (same accumulation order, zero
// terms contribute exactly 0.0), so downstream rankings cannot shift.
TEST(UsageProfileTest, CacheDistanceBitIdenticalToDirect) {
  const RecipeCorpus corpus = ThreeCuisines();
  const UsageProfileCache cache(corpus);
  for (int a = 0; a < kNumCuisines; ++a) {
    for (int b = 0; b < kNumCuisines; ++b) {
      EXPECT_EQ(cache.Distance(static_cast<CuisineId>(a),
                               static_cast<CuisineId>(b)),
                IngredientUsageDistance(corpus, static_cast<CuisineId>(a),
                                        static_cast<CuisineId>(b)))
          << a << " vs " << b;
    }
  }
}

TEST(UsageProfileTest, CachedNearestMatchesCorpusOverload) {
  const RecipeCorpus corpus = ThreeCuisines();
  const UsageProfileCache cache(corpus);
  const auto direct = NearestCuisines(corpus, 0, 5);
  const auto cached = NearestCuisines(cache, 0, 5);
  ASSERT_EQ(cached.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(cached[i].cuisine, direct[i].cuisine);
    EXPECT_EQ(cached[i].distance, direct[i].distance);
  }
}

TEST(AgglomerativeClusterTest, MergesClosestFirst) {
  // Three points: A and B close (0.1), C far (1.0).
  const std::vector<std::vector<double>> matrix = {
      {0.0, 0.1, 1.0}, {0.1, 0.0, 1.0}, {1.0, 1.0, 0.0}};
  const std::vector<ClusterMerge> merges = AgglomerativeCluster(matrix);
  ASSERT_EQ(merges.size(), 2u);
  EXPECT_EQ(merges[0].members, (std::vector<CuisineId>{0, 1}));
  EXPECT_DOUBLE_EQ(merges[0].distance, 0.1);
  EXPECT_EQ(merges[1].members, (std::vector<CuisineId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(merges[1].distance, 1.0);  // Average linkage.
}

TEST(AgglomerativeClusterTest, TrivialInputs) {
  EXPECT_TRUE(AgglomerativeCluster({}).empty());
  EXPECT_TRUE(AgglomerativeCluster({{0.0}}).empty());
}

TEST(CutClustersTest, ProducesRequestedPartition) {
  const std::vector<std::vector<double>> matrix = {
      {0.0, 0.1, 1.0, 0.9}, {0.1, 0.0, 1.0, 0.9},
      {1.0, 1.0, 0.0, 0.2}, {0.9, 0.9, 0.2, 0.0}};
  const auto two = CutClusters(matrix, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::vector<CuisineId>{0, 1}));
  EXPECT_EQ(two[1], (std::vector<CuisineId>{2, 3}));

  const auto four = CutClusters(matrix, 4);
  EXPECT_EQ(four.size(), 4u);
  const auto one = CutClusters(matrix, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 4u);
}

}  // namespace
}  // namespace culevo

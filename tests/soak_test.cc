// Chaos soak of the supervised culevod stack (`--supervise`): mixed query
// load against a real supervised server while the child is SIGKILLed,
// reload failpoints fire, and hostile clients stall mid-frame. The
// invariants under all of that:
//
//   1. Zero wrong answers: every `ok` response is bit-identical to the
//      batch answer on either the base corpus (A) or the delta-extended
//      corpus (B) — crashes may cost availability, never correctness.
//   2. Bounded downtime: after each SIGKILL a fresh connection serves
//      again within a hard bound.
//   3. Epochs never move backwards within one child incarnation.
//   4. The hot delta reload swaps generations without re-reading the
//      snapshot (corpus.snapshot.mmap_loads stays flat), and a
//      mismatched-base delta is refused while the old generation serves.
//
// The binary path is injected at compile time (CULEVOD_PATH).

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "corpus/corpus_snapshot.h"
#include "corpus/ingestion.h"
#include "lexicon/world_lexicon.h"
#include "service/protocol.h"
#include "service/service_core.h"
#include "synth/generator.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/subprocess.h"

namespace culevo {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "culevo_soak_" + std::to_string(::getpid()) +
         "_" + name;
}

int ConnectOnce(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One full connect + request + response cycle. Any transport failure is
/// a non-OK status (tolerated during chaos, asserted quiet otherwise).
Result<std::string> QueryFresh(const std::string& socket_path,
                               const std::string& request,
                               int timeout_ms = 10000) {
  const int fd = ConnectOnce(socket_path);
  if (fd < 0) {
    return Status::Unavailable(StrFormat("connect(%s): %s",
                                         socket_path.c_str(),
                                         std::strerror(errno)));
  }
  std::string response;
  Status status = WriteFrame(fd, request);
  if (status.ok()) status = ReadFrame(fd, &response, timeout_ms);
  ::close(fd);
  if (!status.ok()) return status;
  return response;
}

/// Blocks until a ping round-trips, returning the wait in ms; -1 on
/// deadline. The post-kill recovery probe.
double AwaitServing(const std::string& socket_path, int deadline_ms) {
  const Clock::time_point start = Clock::now();
  while (MillisSince(start) < deadline_ms) {
    Result<std::string> pong = QueryFresh(socket_path, "ping", 2000);
    if (pong.ok() && *pong == "ok 1\npong\n") return MillisSince(start);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

Result<long long> PidfilePid(const std::string& pidfile) {
  Result<std::string> text = ReadFileToString(pidfile);
  if (!text.ok()) return text.status();
  errno = 0;
  char* end = nullptr;
  const long long pid = std::strtoll(text->c_str(), &end, 10);
  if (errno != 0 || end == text->c_str() || pid <= 0) {
    return Status::DataLoss("unparsable pidfile: " + *text);
  }
  return pid;
}

/// Extracts `counter\t<name>\t<value>` from a `metrics` response.
Result<long long> CounterRow(const std::string& metrics,
                             const std::string& name) {
  const std::string needle = "counter\t" + name + "\t";
  const size_t at = metrics.find(needle);
  if (at == std::string::npos) {
    return Status::NotFound("no counter row for " + name);
  }
  return std::strtoll(metrics.c_str() + at + needle.size(), nullptr, 10);
}

/// Extracts the `epoch\t<n>` row from an `info` response.
Result<long long> EpochRow(const std::string& info) {
  const size_t at = info.find("epoch\t");
  if (at == std::string::npos) return Status::NotFound("no epoch row");
  return std::strtoll(info.c_str() + at + 6, nullptr, 10);
}

TEST(CulevodSoakTest, SupervisedChaosSoakKeepsAnswersBitIdentical) {
  const std::string socket_path = TempPath("srv.sock");
  const std::string pidfile = TempPath("child.pid");
  const std::string snapshot_path = TempPath("base.snap");
  const std::string delta_path = TempPath("good.delta");
  const std::string bad_delta_path = TempPath("mismatch.delta");

  // --- Ground truth -------------------------------------------------------
  // Base corpus A: the same deterministic synthetic world the child will
  // serve, shipped to it as a CULEVO-CORPUS snapshot file.
  SynthConfig synth;
  synth.scale = 0.02;
  synth.seed = 42;
  Result<RecipeCorpus> base = SynthesizeWorldCorpus(WorldLexicon(), synth);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_TRUE(
      WriteCorpusSnapshot(snapshot_path, *base, {.sync = false}).ok());

  // Delta D: ~1% new recipes (clones of existing ones — content does not
  // matter, identity does), bound to A's exact fingerprint.
  CorpusDelta delta;
  delta.base_recipes = base->num_recipes();
  delta.base_fingerprint = CorpusContentFingerprint(*base);
  const size_t growth =
      std::max<size_t>(1, base->num_recipes() / 100);
  for (size_t i = 0; i < growth; ++i) {
    const uint32_t src = static_cast<uint32_t>(i % base->num_recipes());
    const std::span<const IngredientId> ingredients =
        base->ingredients_of(src);
    delta.records.push_back(
        {base->cuisine_of(src),
         std::vector<IngredientId>(ingredients.begin(), ingredients.end())});
  }
  ASSERT_TRUE(WriteCorpusDelta(delta_path, delta, {.sync = false}).ok());

  // A mismatched-base delta: same records, wrong identity.
  CorpusDelta mismatched = delta;
  mismatched.base_fingerprint ^= 0xDEADBEEF;
  ASSERT_TRUE(
      WriteCorpusDelta(bad_delta_path, mismatched, {.sync = false}).ok());

  // Expected answers on both generations, from in-process cores fed the
  // identical snapshot + delta files (the batch ground truth).
  ServiceCore core_a(&WorldLexicon(), ServiceOptions{});
  ASSERT_TRUE(core_a.LoadFromFile(snapshot_path).ok());
  ServiceCore core_b(&WorldLexicon(), ServiceOptions{});
  ASSERT_TRUE(core_b.LoadFromFile(snapshot_path).ok());
  ASSERT_TRUE(core_b.ReloadDelta(delta_path).ok());

  // Query set over cuisines that are actually populated in the scaled
  // corpus (derived from the recipes, not assumed).
  std::vector<CuisineId> populated;
  for (uint32_t r = 0;
       r < base->num_recipes() && populated.size() < 3; ++r) {
    const CuisineId c = base->cuisine_of(r);
    if (std::find(populated.begin(), populated.end(), c) ==
        populated.end()) {
      populated.push_back(c);
    }
  }
  ASSERT_FALSE(populated.empty());
  std::vector<std::string> queries = {"ping"};
  for (const CuisineId c : populated) {
    const std::string code(CuisineAt(c).code);
    queries.push_back("overrep " + code + " 5");
    queries.push_back("nearest " + code + " 3");
    queries.push_back("stats " + code);
  }
  queries.push_back("recipe 0");
  queries.push_back(
      StrFormat("recipe %zu", base->num_recipes() - 1));
  queries.push_back(
      StrFormat("search #%u limit=3",
                static_cast<unsigned>(base->ingredients_of(0)[0])));
  std::vector<std::string> expected_a, expected_b;
  for (const std::string& q : queries) {
    expected_a.push_back(core_a.Handle(q));
    expected_b.push_back(core_b.Handle(q));
    ASSERT_TRUE(StartsWith(expected_a.back(), "ok ")) << q;
    ASSERT_TRUE(StartsWith(expected_b.back(), "ok ")) << q;
  }

  // --- The supervised stack under test ------------------------------------
  Subprocess supervisor;
  SpawnOptions spawn;
  // Each child incarnation inherits the failpoint: after three clean
  // serve.reload evaluations (startup load, refused bad delta, good
  // delta), the next reload attempt in that incarnation fails injected —
  // a reload dying mid-swap during the chaos phase.
  spawn.extra_env = {"CULEVO_FAILPOINTS=serve.reload=3*1"};
  spawn.silence_stdout = true;
  spawn.silence_stderr = true;
  ASSERT_TRUE(supervisor
                  .Spawn({CULEVOD_PATH, "--supervise", "--socket",
                          socket_path, "--load-snapshot", snapshot_path,
                          "--delta-path", delta_path, "--pidfile", pidfile,
                          "--threads", "3", "--deadline-ms", "60000",
                          "--client-read-timeout-ms", "200",
                          "--probe-interval-ms", "100", "--probe-timeout-ms",
                          "1000", "--probe-failures", "3",
                          "--startup-grace-ms", "30000",
                          "--restart-backoff-ms", "50",
                          "--restart-backoff-cap-ms", "200"},
                         spawn)
                  .ok());
  ASSERT_GE(AwaitServing(socket_path, 30000), 0) << "server never came up";

  // --- Phase 1: quiet correctness ------------------------------------------
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<std::string> got = QueryFresh(socket_path, queries[i]);
    ASSERT_TRUE(got.ok()) << queries[i] << ": " << got.status();
    EXPECT_EQ(*got, expected_a[i]) << queries[i];
  }

  Result<std::string> metrics = QueryFresh(socket_path, "metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  Result<long long> mmap_loads_before =
      CounterRow(*metrics, "corpus.snapshot.mmap_loads");
  ASSERT_TRUE(mmap_loads_before.ok()) << mmap_loads_before.status();

  // Mismatched-base delta: refused with FailedPrecondition, epoch
  // unmoved, answers unchanged.
  Result<std::string> refused =
      QueryFresh(socket_path, "reload-delta " + bad_delta_path);
  ASSERT_TRUE(refused.ok()) << refused.status();
  EXPECT_TRUE(StartsWith(*refused, "error FailedPrecondition")) << *refused;
  Result<std::string> info = QueryFresh(socket_path, "info");
  ASSERT_TRUE(info.ok()) << info.status();
  Result<long long> epoch_after_refusal = EpochRow(*info);
  ASSERT_TRUE(epoch_after_refusal.ok()) << *info;
  EXPECT_EQ(*epoch_after_refusal, 1);
  Result<std::string> still_a = QueryFresh(socket_path, queries[1]);
  ASSERT_TRUE(still_a.ok());
  EXPECT_EQ(*still_a, expected_a[1]);

  // The good delta hot-swaps to generation B...
  Result<std::string> swapped =
      QueryFresh(socket_path, "reload-delta " + delta_path);
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_EQ(*swapped,
            StrFormat("ok 2\nepoch\t2\nrecipes\t%zu\n",
                      base->num_recipes() + growth));
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<std::string> got = QueryFresh(socket_path, queries[i]);
    ASSERT_TRUE(got.ok()) << queries[i] << ": " << got.status();
    EXPECT_EQ(*got, expected_b[i]) << queries[i];
  }

  // ...without touching the snapshot file again: the incremental build
  // starts from the serving generation, so mmap loads stay flat.
  metrics = QueryFresh(socket_path, "metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  Result<long long> mmap_loads_after =
      CounterRow(*metrics, "corpus.snapshot.mmap_loads");
  ASSERT_TRUE(mmap_loads_after.ok()) << mmap_loads_after.status();
  EXPECT_EQ(*mmap_loads_after, *mmap_loads_before)
      << "delta reload re-read the snapshot";

  // --- Phase 2: chaos -------------------------------------------------------
  std::atomic<bool> stop{false};
  std::atomic<int64_t> ok_answers{0};
  std::atomic<int64_t> wrong_answers{0};
  std::mutex diagnostics_mu;
  std::vector<std::string> diagnostics;
  const auto report_wrong = [&](const std::string& what) {
    wrong_answers.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(diagnostics_mu);
    if (diagnostics.size() < 5) diagnostics.push_back(what);
  };

  // Mixed-load clients: every `ok` answer must equal generation A or B
  // exactly; transport errors and `error` responses are availability (a
  // restart in progress), never correctness, and are tolerated.
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = i++ % queries.size();
        Result<std::string> got =
            QueryFresh(socket_path, queries[q], 5000);
        if (!got.ok()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        if (StartsWith(*got, "error ")) continue;
        if (*got != expected_a[q] && *got != expected_b[q]) {
          report_wrong(queries[q] + " -> " + got->substr(0, 200));
        } else {
          ok_answers.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Hostile client: starts a frame, stalls past the server's 200 ms
  // client-read deadline, hangs up. Must only ever cost its own
  // connection.
  std::thread staller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const int fd = ConnectOnce(socket_path);
      if (fd >= 0) {
        const char prefix[4] = {16, 0, 0, 0};
        (void)!::write(fd, prefix, sizeof(prefix));
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        ::close(fd);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
  });

  // Epoch monotonicity monitor: within one child incarnation (pidfile
  // unchanged around the observation) the served epoch must never
  // decrease. A restart may legally reset it to 1.
  std::thread monitor([&] {
    long long last_pid = -1;
    long long last_epoch = -1;
    while (!stop.load(std::memory_order_relaxed)) {
      const Result<long long> pid_before = PidfilePid(pidfile);
      Result<std::string> response = QueryFresh(socket_path, "info", 2000);
      const Result<long long> pid_after = PidfilePid(pidfile);
      if (pid_before.ok() && pid_after.ok() &&
          *pid_before == *pid_after && response.ok() &&
          StartsWith(*response, "ok ")) {
        const Result<long long> epoch = EpochRow(*response);
        if (epoch.ok()) {
          if (*pid_before == last_pid && *epoch < last_epoch) {
            report_wrong(StrFormat(
                "epoch moved backwards within pid %lld: %lld -> %lld",
                *pid_before, last_epoch, *epoch));
          }
          last_pid = *pid_before;
          last_epoch = *epoch;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  // The kill loop: SIGKILL the serving child via the supervisor's
  // pidfile, assert bounded recovery, and fire SIGHUP reloads (which hit
  // both the refused-delta path and the armed serve.reload failpoint in
  // each incarnation).
  constexpr int kKills = 3;
  double worst_downtime_ms = 0;
  for (int k = 0; k < kKills; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    ASSERT_EQ(::kill(static_cast<pid_t>(supervisor.pid()), SIGHUP), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    const Result<long long> child_pid = PidfilePid(pidfile);
    ASSERT_TRUE(child_pid.ok()) << child_pid.status();
    ASSERT_EQ(::kill(static_cast<pid_t>(*child_pid), SIGKILL), 0);
    const double downtime = AwaitServing(socket_path, 30000);
    ASSERT_GE(downtime, 0) << "no recovery after SIGKILL #" << k;
    worst_downtime_ms = std::max(worst_downtime_ms, downtime);

    // The replacement serves generation A again (its startup load) —
    // re-apply the delta sometimes so both generations stay live targets.
    if (k % 2 == 0) {
      (void)QueryFresh(socket_path, "reload-delta " + delta_path);
    }
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) client.join();
  staller.join();
  monitor.join();

  // --- Verdict --------------------------------------------------------------
  EXPECT_EQ(wrong_answers.load(), 0) << [&] {
    std::lock_guard<std::mutex> lock(diagnostics_mu);
    std::string joined;
    for (const std::string& d : diagnostics) joined += d + "\n";
    return joined;
  }();
  EXPECT_GT(ok_answers.load(), 0) << "chaos clients never got an answer";
  EXPECT_LT(worst_downtime_ms, 30000);
  std::fprintf(stderr,
               "soak: %lld verified answers, %d kills, worst downtime "
               "%.0f ms\n",
               static_cast<long long>(ok_answers.load()), kKills,
               worst_downtime_ms);

  // Clean shutdown: SIGTERM drains the supervisor (which drains its
  // child) to exit 0.
  const ExitState exit_state = supervisor.Terminate(15000);
  EXPECT_TRUE(exit_state.exited)
      << "supervisor died on signal " << exit_state.signal;
  EXPECT_EQ(exit_state.code, 0);

  std::remove(pidfile.c_str());
  std::remove(snapshot_path.c_str());
  std::remove(delta_path.c_str());
  std::remove(bad_delta_path.c_str());
  ::unlink(socket_path.c_str());
}

}  // namespace
}  // namespace culevo

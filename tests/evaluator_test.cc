#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/check.h"

namespace culevo {
namespace {

/// One synthesized cuisine (KOR, small) shared across tests.
const RecipeCorpus& TestCorpus() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    const Lexicon& lexicon = WorldLexicon();
    const CuisineId kor = CuisineFromCode("KOR").value();
    const CuisineProfile profile = BuildCuisineProfile(lexicon, kor, 7);
    SynthConfig config;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(
        SynthesizeCuisine(lexicon, profile, config, 600, &builder));
    return *new RecipeCorpus(builder.Build());
  }();
  return corpus;
}

TEST(EvaluateCuisineTest, ScoresAllModels) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId kor = CuisineFromCode("KOR").value();
  const auto cm_r = MakeCmR(&lexicon);
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 3;

  Result<CuisineEvaluation> evaluation = EvaluateCuisine(
      TestCorpus(), kor, lexicon, {cm_r.get(), &nm}, config);
  ASSERT_TRUE(evaluation.ok());
  ASSERT_EQ(evaluation->scores.size(), 2u);
  EXPECT_EQ(evaluation->scores[0].model, "CM-R");
  EXPECT_EQ(evaluation->scores[1].model, "NM");
  EXPECT_FALSE(evaluation->empirical_ingredient.empty());
  EXPECT_FALSE(evaluation->empirical_category.empty());
  for (const ModelScore& score : evaluation->scores) {
    EXPECT_GE(score.mae_ingredient, 0.0);
    EXPECT_GE(score.mae_category, 0.0);
    EXPECT_GE(score.paper_eq2_ingredient, 0.0);
    EXPECT_FALSE(score.ingredient_curve.empty());
  }
}

TEST(EvaluateCuisineTest, CopyMutateBeatsNull) {
  // The paper's headline claim, as a regression test.
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId kor = CuisineFromCode("KOR").value();
  const auto cm_r = MakeCmR(&lexicon);
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 5;
  Result<CuisineEvaluation> evaluation = EvaluateCuisine(
      TestCorpus(), kor, lexicon, {cm_r.get(), &nm}, config);
  ASSERT_TRUE(evaluation.ok());
  EXPECT_LT(evaluation->scores[0].mae_ingredient,
            evaluation->scores[1].mae_ingredient * 0.7);
  EXPECT_EQ(evaluation->BestByIngredientMae(), 0u);
}

TEST(EvaluateCuisineTest, PaperEq2IsSquaredScale) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId kor = CuisineFromCode("KOR").value();
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 2;
  Result<CuisineEvaluation> evaluation =
      EvaluateCuisine(TestCorpus(), kor, lexicon, {&nm}, config);
  ASSERT_TRUE(evaluation.ok());
  // For sub-unit frequency gaps, the squared form is smaller than |.|.
  EXPECT_LE(evaluation->scores[0].paper_eq2_ingredient,
            evaluation->scores[0].mae_ingredient);
}

TEST(EvaluateCuisineTest, EmptyModelListRejected) {
  SimulationConfig config;
  EXPECT_FALSE(EvaluateCuisine(TestCorpus(), CuisineFromCode("KOR").value(),
                               WorldLexicon(), {}, config)
                   .ok());
}

TEST(EvaluateCuisineTest, EmptyCuisineRejected) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel nm;
  SimulationConfig config;
  EXPECT_FALSE(EvaluateCuisine(TestCorpus(), CuisineFromCode("ITA").value(),
                               lexicon, {&nm}, config)
                   .ok());
}

}  // namespace
}  // namespace culevo

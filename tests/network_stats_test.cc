#include "analysis/network_stats.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

PairingEdge Edge(IngredientId a, IngredientId b) {
  PairingEdge edge;
  edge.a = a;
  edge.b = b;
  edge.cooccurrences = 1;
  return edge;
}

TEST(NetworkStatsTest, TriangleGraph) {
  const NetworkStats stats =
      ComputeNetworkStats({Edge(0, 1), Edge(1, 2), Edge(0, 2)});
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.density, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.clustering, 1.0);
}

TEST(NetworkStatsTest, PathGraphHasNoTriangles) {
  const NetworkStats stats =
      ComputeNetworkStats({Edge(0, 1), Edge(1, 2), Edge(2, 3)});
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.0);
  EXPECT_EQ(stats.max_degree, 2u);
  ASSERT_GE(stats.degree_histogram.size(), 3u);
  EXPECT_EQ(stats.degree_histogram[1], 2u);  // Two endpoints.
  EXPECT_EQ(stats.degree_histogram[2], 2u);  // Two middle nodes.
}

TEST(NetworkStatsTest, StarGraph) {
  const NetworkStats stats = ComputeNetworkStats(
      {Edge(0, 1), Edge(0, 2), Edge(0, 3), Edge(0, 4)});
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.max_degree, 4u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.0);
}

TEST(NetworkStatsTest, DuplicateAndSelfEdgesIgnored) {
  const NetworkStats stats = ComputeNetworkStats(
      {Edge(0, 1), Edge(1, 0), Edge(0, 0), Edge(0, 1)});
  EXPECT_EQ(stats.num_nodes, 2u);
  EXPECT_EQ(stats.num_edges, 1u);
}

TEST(NetworkStatsTest, EmptyNetwork) {
  const NetworkStats stats = ComputeNetworkStats({});
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.clustering, 0.0);
}

TEST(NetworkStatsTest, TriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3: 1 triangle, triples = 1+1+3+0 = 5.
  const NetworkStats stats = ComputeNetworkStats(
      {Edge(0, 1), Edge(1, 2), Edge(0, 2), Edge(2, 3)});
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_NEAR(stats.clustering, 3.0 * 1.0 / 5.0, 1e-12);
}

}  // namespace
}  // namespace culevo

#include "analysis/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/distributions.h"

namespace culevo {
namespace {

TEST(FitZipfTest, RecoversExactPowerLaw) {
  // f(r) = 0.5 * r^(-1.2), an exact power law.
  std::vector<double> values;
  for (int r = 1; r <= 200; ++r) {
    values.push_back(0.5 * std::pow(static_cast<double>(r), -1.2));
  }
  const ZipfFit fit =
      FitZipf(RankFrequency::FromFrequencies(std::move(values)));
  EXPECT_NEAR(fit.exponent, 1.2, 1e-9);
  EXPECT_NEAR(fit.intercept, std::log10(0.5), 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitZipfTest, FlatCurveHasZeroExponent) {
  const ZipfFit fit = FitZipf(
      RankFrequency::FromFrequencies(std::vector<double>(50, 0.3)));
  EXPECT_NEAR(fit.exponent, 0.0, 1e-9);
}

TEST(FitZipfTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitZipf(RankFrequency()).exponent, 0.0);
  EXPECT_DOUBLE_EQ(
      FitZipf(RankFrequency::FromFrequencies({0.5})).exponent, 0.0);
  // Zero entries are skipped.
  const ZipfFit fit =
      FitZipf(RankFrequency::FromFrequencies({0.5, 0.25, 0.0, 0.0}));
  EXPECT_GT(fit.exponent, 0.0);
}

TEST(FitZipfTest, NoisyPowerLawStillGoodFit) {
  std::vector<double> zipf = ZipfWeights(300, 1.0);
  const ZipfFit fit =
      FitZipf(RankFrequency::FromFrequencies(std::move(zipf)));
  EXPECT_NEAR(fit.exponent, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(IngredientPopularityCurveTest, CountsPresencePerRecipe) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1, 2}).ok());
  ASSERT_TRUE(builder.Add(0, {1, 3}).ok());
  ASSERT_TRUE(builder.Add(0, {1, 2}).ok());
  ASSERT_TRUE(builder.Add(1, {7}).ok());
  const RecipeCorpus corpus = builder.Build();

  const RankFrequency curve = IngredientPopularityCurve(corpus, 0);
  ASSERT_EQ(curve.size(), 3u);           // Ingredients 1, 2, 3.
  EXPECT_DOUBLE_EQ(curve.at_rank(1), 1.0);        // 1 in 3/3.
  EXPECT_DOUBLE_EQ(curve.at_rank(2), 2.0 / 3.0);  // 2 in 2/3.
  EXPECT_DOUBLE_EQ(curve.at_rank(3), 1.0 / 3.0);  // 3 in 1/3.
  EXPECT_TRUE(IngredientPopularityCurve(corpus, 5).empty());
}

}  // namespace
}  // namespace culevo

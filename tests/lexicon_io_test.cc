#include "lexicon/lexicon_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/failpoint.h"

namespace culevo {
namespace {

constexpr char kGoodTsv[] =
    "# comment line\n"
    "Vegetable\tTomato\t0\tlove apple\n"
    "\n"
    "Additive\tSoybean Sauce\t1\tsoy sauce;shoyu\n"
    "Spice\tCumin\t0\t\n";

TEST(ParseLexiconTsvTest, ParsesEntitiesAliasesAndCompounds) {
  Result<Lexicon> lexicon = ParseLexiconTsv(kGoodTsv);
  ASSERT_TRUE(lexicon.ok());
  EXPECT_EQ(lexicon->size(), 3u);
  EXPECT_EQ(lexicon->num_compounds(), 1u);

  const auto sauce = lexicon->Find("shoyu");
  ASSERT_TRUE(sauce.has_value());
  EXPECT_EQ(lexicon->name(*sauce), "Soybean Sauce");
  EXPECT_TRUE(lexicon->is_compound(*sauce));
  EXPECT_EQ(lexicon->Find("love apple"), lexicon->Find("tomato"));
}

TEST(ParseLexiconTsvTest, RejectsUnknownCategory) {
  Result<Lexicon> lexicon = ParseLexiconTsv("Sorcery\tEye of Newt\t0\t\n");
  EXPECT_FALSE(lexicon.ok());
}

TEST(ParseLexiconTsvTest, RejectsMissingFields) {
  EXPECT_FALSE(ParseLexiconTsv("Vegetable\tTomato\n").ok());
}

TEST(ParseLexiconTsvTest, RejectsBadCompoundFlag) {
  EXPECT_FALSE(ParseLexiconTsv("Vegetable\tTomato\t2\t\n").ok());
  EXPECT_FALSE(ParseLexiconTsv("Vegetable\tTomato\tx\t\n").ok());
}

TEST(ParseLexiconTsvTest, RejectsDuplicateEntities) {
  EXPECT_FALSE(
      ParseLexiconTsv("Vegetable\tTomato\t0\t\nFruit\tTomatoes\t0\t\n")
          .ok());
}

TEST(ParseLexiconTsvTest, ReportsLineNumbers) {
  Result<Lexicon> lexicon =
      ParseLexiconTsv("Vegetable\tTomato\t0\t\nBadLine\n");
  ASSERT_FALSE(lexicon.ok());
  EXPECT_NE(lexicon.status().message().find("line 2"), std::string::npos);
}

TEST(LexiconTsvRoundTripTest, PreservesEntities) {
  Result<Lexicon> original = ParseLexiconTsv(kGoodTsv);
  ASSERT_TRUE(original.ok());
  const std::string serialized = FormatLexiconTsv(original.value());
  Result<Lexicon> reparsed = ParseLexiconTsv(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original->size());
  for (size_t i = 0; i < original->size(); ++i) {
    const IngredientId id = static_cast<IngredientId>(i);
    EXPECT_EQ(reparsed->name(id), original->name(id));
    EXPECT_EQ(reparsed->category(id), original->category(id));
    EXPECT_EQ(reparsed->is_compound(id), original->is_compound(id));
  }
}

TEST(LexiconTsvFileTest, ReadMissingFileFails) {
  Result<Lexicon> lexicon = ReadLexiconTsv("/nonexistent/lex.tsv");
  ASSERT_FALSE(lexicon.ok());
  EXPECT_EQ(lexicon.status().code(), StatusCode::kIOError);
}

// Failpoint-driven error paths through the file reader: the read-level
// fault (lexicon.read) and a mid-stream failure after a successful open
// (io.read.stream) both surface the injected Status.
class LexiconIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/culevo_lexicon_fault.tsv";
    Result<Lexicon> lexicon = ParseLexiconTsv(kGoodTsv);
    ASSERT_TRUE(lexicon.ok());
    ASSERT_TRUE(WriteLexiconTsv(path_, lexicon.value()).ok());
  }
  void TearDown() override {
    Failpoints::Get().DisarmAll();
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(LexiconIoFaultTest, ReadFailpointPropagates) {
  Failpoints::Get().Arm("lexicon.read");
  Result<Lexicon> lexicon = ReadLexiconTsv(path_);
  ASSERT_FALSE(lexicon.ok());
  EXPECT_EQ(lexicon.status().code(), StatusCode::kIOError);
}

TEST_F(LexiconIoFaultTest, MidStreamReadFailurePropagates) {
  Failpoints::Get().Arm("io.read.stream");
  Result<Lexicon> lexicon = ReadLexiconTsv(path_);
  ASSERT_FALSE(lexicon.ok());
  EXPECT_EQ(lexicon.status().code(), StatusCode::kIOError);
  Failpoints::Get().DisarmAll();
  EXPECT_TRUE(ReadLexiconTsv(path_).ok());
}

}  // namespace
}  // namespace culevo

#include "text/phrase_trie.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

std::vector<std::string> Tokens(std::initializer_list<const char*> words) {
  return std::vector<std::string>(words.begin(), words.end());
}

TEST(PhraseTrieTest, InsertAndLookup) {
  PhraseTrie trie;
  trie.Insert(Tokens({"olive"}), 1);
  trie.Insert(Tokens({"olive", "oil"}), 2);
  EXPECT_EQ(trie.Lookup(Tokens({"olive"})), 1);
  EXPECT_EQ(trie.Lookup(Tokens({"olive", "oil"})), 2);
  EXPECT_EQ(trie.Lookup(Tokens({"oil"})), PhraseTrie::kNoValue);
  EXPECT_EQ(trie.Lookup(Tokens({"olive", "oil", "extra"})),
            PhraseTrie::kNoValue);
  EXPECT_EQ(trie.num_phrases(), 2u);
}

TEST(PhraseTrieTest, PrefixWithoutValueIsNotAMatch) {
  PhraseTrie trie;
  trie.Insert(Tokens({"ginger", "garlic", "paste"}), 9);
  EXPECT_EQ(trie.Lookup(Tokens({"ginger"})), PhraseTrie::kNoValue);
  EXPECT_EQ(trie.Lookup(Tokens({"ginger", "garlic"})), PhraseTrie::kNoValue);
}

TEST(PhraseTrieTest, OverwriteKeepsCount) {
  PhraseTrie trie;
  trie.Insert(Tokens({"salt"}), 1);
  trie.Insert(Tokens({"salt"}), 5);
  EXPECT_EQ(trie.Lookup(Tokens({"salt"})), 5);
  EXPECT_EQ(trie.num_phrases(), 1u);
}

TEST(PhraseTrieTest, LongestMatchPrefersLongerPhrase) {
  PhraseTrie trie;
  trie.Insert(Tokens({"ginger"}), 1);
  trie.Insert(Tokens({"garlic"}), 2);
  trie.Insert(Tokens({"ginger", "garlic", "paste"}), 3);
  const std::vector<std::string> text =
      Tokens({"ginger", "garlic", "paste", "x"});
  size_t len = 0;
  EXPECT_EQ(trie.LongestMatch(text, 0, &len), 3);
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(trie.LongestMatch(text, 1, &len), 2);
  EXPECT_EQ(len, 1u);
  EXPECT_EQ(trie.LongestMatch(text, 3, &len), PhraseTrie::kNoValue);
  EXPECT_EQ(len, 0u);
}

TEST(PhraseTrieTest, LongestMatchFallsBackToShorterValue) {
  PhraseTrie trie;
  trie.Insert(Tokens({"sea"}), 1);
  trie.Insert(Tokens({"sea", "salt", "flakes"}), 2);
  // "sea salt" walks two nodes but only "sea" carries a value.
  size_t len = 0;
  EXPECT_EQ(trie.LongestMatch(Tokens({"sea", "salt"}), 0, &len), 1);
  EXPECT_EQ(len, 1u);
}

TEST(PhraseTrieTest, ScanAllSkipsUnknownTokens) {
  PhraseTrie trie;
  trie.Insert(Tokens({"olive", "oil"}), 1);
  trie.Insert(Tokens({"tomato"}), 2);
  const std::vector<int64_t> hits =
      trie.ScanAll(Tokens({"fresh", "olive", "oil", "and", "tomato"}));
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 2}));
}

TEST(PhraseTrieTest, ScanAllConsumesMatchedSpan) {
  PhraseTrie trie;
  trie.Insert(Tokens({"olive", "oil"}), 1);
  trie.Insert(Tokens({"oil"}), 2);
  // After matching "olive oil", scanning resumes *after* the phrase, so the
  // inner "oil" is not reported separately.
  EXPECT_EQ(trie.ScanAll(Tokens({"olive", "oil"})),
            (std::vector<int64_t>{1}));
}

TEST(PhraseTrieTest, EmptyTrieMatchesNothing) {
  PhraseTrie trie;
  EXPECT_TRUE(trie.ScanAll(Tokens({"a", "b"})).empty());
  EXPECT_EQ(trie.num_phrases(), 0u);
}

}  // namespace
}  // namespace culevo

#include "lexicon/lexicon.h"

#include <gtest/gtest.h>

#include "lexicon/category.h"

namespace culevo {
namespace {

TEST(CategoryTest, NamesRoundTrip) {
  for (int i = 0; i < kNumCategories; ++i) {
    const Category category = CategoryFromIndex(i);
    Result<Category> parsed = CategoryFromName(CategoryName(category));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), category);
  }
}

TEST(CategoryTest, ParseIsCaseAndSpaceInsensitive) {
  EXPECT_EQ(CategoryFromName("nuts and seeds").value(),
            Category::kNutsAndSeeds);
  EXPECT_EQ(CategoryFromName("NUTSANDSEEDS").value(),
            Category::kNutsAndSeeds);
  EXPECT_EQ(CategoryFromName("beverage alcoholic").value(),
            Category::kBeverageAlcoholic);
  EXPECT_FALSE(CategoryFromName("unknown kind").ok());
}

TEST(LexiconTest, AddAndAccessors) {
  Lexicon lexicon;
  Result<IngredientId> tomato = lexicon.Add("Tomato", Category::kVegetable);
  ASSERT_TRUE(tomato.ok());
  Result<IngredientId> paste =
      lexicon.Add("Ginger Garlic Paste", Category::kAdditive, true);
  ASSERT_TRUE(paste.ok());

  EXPECT_EQ(lexicon.size(), 2u);
  EXPECT_EQ(lexicon.name(tomato.value()), "Tomato");
  EXPECT_EQ(lexicon.category(tomato.value()), Category::kVegetable);
  EXPECT_FALSE(lexicon.is_compound(tomato.value()));
  EXPECT_TRUE(lexicon.is_compound(paste.value()));
  EXPECT_EQ(lexicon.num_compounds(), 1u);
}

TEST(LexiconTest, DuplicateNameRejected) {
  Lexicon lexicon;
  ASSERT_TRUE(lexicon.Add("Tomato", Category::kVegetable).ok());
  // Same entity after normalization + stemming.
  Result<IngredientId> duplicate =
      lexicon.Add("tomatoes", Category::kVegetable);
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
}

TEST(LexiconTest, EmptyNameRejected) {
  Lexicon lexicon;
  EXPECT_FALSE(lexicon.Add("  !! ", Category::kSpice).ok());
}

TEST(LexiconTest, FindUsesAliasingProtocol) {
  Lexicon lexicon;
  const IngredientId id =
      lexicon.Add("Soybean Sauce", Category::kAdditive, true).value();
  ASSERT_TRUE(lexicon.AddAlias(id, "soy sauce").ok());

  EXPECT_EQ(lexicon.Find("Soybean Sauce"), id);
  EXPECT_EQ(lexicon.Find("soy sauce"), id);
  EXPECT_EQ(lexicon.Find("SOY SAUCES"), id);  // Stemming.
  EXPECT_EQ(lexicon.Find("soy-sauce"), id);   // Punctuation.
  EXPECT_EQ(lexicon.Find("fish sauce"), std::nullopt);
}

TEST(LexiconTest, AliasCollisionRejectedButIdempotentOk) {
  Lexicon lexicon;
  const IngredientId a = lexicon.Add("Scallion", Category::kVegetable).value();
  const IngredientId b = lexicon.Add("Leek", Category::kVegetable).value();
  ASSERT_TRUE(lexicon.AddAlias(a, "green onion").ok());
  EXPECT_TRUE(lexicon.AddAlias(a, "green onion").ok());   // Idempotent.
  EXPECT_FALSE(lexicon.AddAlias(b, "green onion").ok());  // Conflict.
  EXPECT_FALSE(lexicon.AddAlias(static_cast<IngredientId>(99), "x").ok());
}

TEST(LexiconTest, ResolveMentionLongestMatchWins) {
  Lexicon lexicon;
  const IngredientId ginger = lexicon.Add("Ginger", Category::kSpice).value();
  const IngredientId garlic =
      lexicon.Add("Garlic", Category::kVegetable).value();
  const IngredientId paste =
      lexicon.Add("Ginger Garlic Paste", Category::kAdditive, true).value();

  EXPECT_EQ(lexicon.ResolveMention("fresh ginger garlic paste"),
            (std::vector<IngredientId>{paste}));
  EXPECT_EQ(lexicon.ResolveMention("ginger and garlic"),
            (std::vector<IngredientId>{ginger, garlic}));
}

TEST(LexiconTest, ResolveMentionDeduplicates) {
  Lexicon lexicon;
  const IngredientId salt = lexicon.Add("Salt", Category::kAdditive).value();
  EXPECT_EQ(lexicon.ResolveMention("salt and more salt"),
            (std::vector<IngredientId>{salt}));
}

TEST(LexiconTest, IdsInCategory) {
  Lexicon lexicon;
  const IngredientId a = lexicon.Add("Basil", Category::kHerb).value();
  const IngredientId b = lexicon.Add("Mint", Category::kHerb).value();
  lexicon.Add("Salt", Category::kAdditive).value();
  EXPECT_EQ(lexicon.ids_in_category(Category::kHerb),
            (std::vector<IngredientId>{a, b}));
  EXPECT_TRUE(lexicon.ids_in_category(Category::kFish).empty());
}

TEST(LexiconTest, AllIdsIsDense) {
  Lexicon lexicon;
  lexicon.Add("A1", Category::kSpice).value();
  lexicon.Add("B2", Category::kSpice).value();
  EXPECT_EQ(lexicon.AllIds(), (std::vector<IngredientId>{0, 1}));
}

}  // namespace
}  // namespace culevo

#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace culevo {
namespace {

TEST(ParseDsvTest, SimpleRows) {
  Result<DsvTable> table = ParseDsv("a,b\nc,d\n", ',');
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseDsvTest, NoTrailingNewline) {
  Result<DsvTable> table = ParseDsv("a,b", ',');
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 1u);
}

TEST(ParseDsvTest, CrLfLineEndings) {
  Result<DsvTable> table = ParseDsv("a,b\r\nc,d\r\n", ',');
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->rows[0][1], "b");
}

TEST(ParseDsvTest, QuotedFieldsWithDelimiterAndNewline) {
  Result<DsvTable> table = ParseDsv("\"a,1\",\"b\nc\"\n", ',');
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 1u);
  EXPECT_EQ(table->rows[0][0], "a,1");
  EXPECT_EQ(table->rows[0][1], "b\nc");
}

TEST(ParseDsvTest, DoubledQuotesEscape) {
  Result<DsvTable> table = ParseDsv("\"say \"\"hi\"\"\"\n", ',');
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "say \"hi\"");
}

TEST(ParseDsvTest, EmptyFields) {
  Result<DsvTable> table = ParseDsv(",a,\n", ',');
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"", "a", ""}));
}

TEST(ParseDsvTest, UnterminatedQuoteFails) {
  Result<DsvTable> table = ParseDsv("\"open,b\n", ',');
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseDsvTest, QuoteInsideUnquotedFieldFails) {
  Result<DsvTable> table = ParseDsv("ab\"c,d\n", ',');
  EXPECT_FALSE(table.ok());
}

TEST(ParseDsvTest, TabDelimiter) {
  Result<DsvTable> table = ParseDsv("a\tb\nc\td\n", '\t');
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[1][0], "c");
}

TEST(FormatDsvTest, RoundTripsWithQuoting) {
  DsvTable table;
  table.rows = {{"plain", "with,comma", "with\"quote", "with\nnewline"}};
  const std::string text = FormatDsv(table, ',');
  Result<DsvTable> parsed = ParseDsv(text, ',');
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(FileIoTest, MissingFileIsIOError) {
  Result<std::string> content =
      ReadFileToString("/nonexistent/culevo/file.txt");
  EXPECT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIOError);
}

TEST(FileIoTest, WriteThenReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/culevo_csv_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIoTest, DsvFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/culevo_dsv_test.tsv";
  DsvTable table;
  table.rows = {{"x", "1"}, {"y", "2"}};
  ASSERT_TRUE(WriteDsvFile(path, table, '\t').ok());
  Result<DsvTable> parsed = ReadDsvFile(path, '\t');
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
  std::remove(path.c_str());
}

TEST(FileIoTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/f.txt", "x").ok());
}

}  // namespace
}  // namespace culevo

#include "util/file_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/csv.h"
#include "util/failpoint.h"

namespace culevo {
namespace {

// Fast options for tests: no fsync churn on tmpfs, no backoff sleeps.
AtomicWriteOptions FastOptions(int max_attempts = 3) {
  AtomicWriteOptions options;
  options.max_attempts = max_attempts;
  options.retry_backoff = std::chrono::milliseconds(0);
  options.sync = false;
  return options;
}

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/culevo_file_io_test.txt";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    Failpoints::Get().DisarmAll();
    std::remove(path_.c_str());
  }

  std::string ReadBack() {
    Result<std::string> content = ReadFileToString(path_);
    return content.ok() ? content.value() : "<unreadable>";
  }

  std::string path_;
};

TEST_F(FileIoTest, WritesNewFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, "hello\n", FastOptions()).ok());
  EXPECT_EQ(ReadBack(), "hello\n");
}

TEST_F(FileIoTest, OverwritesExistingFile) {
  ASSERT_TRUE(WriteFileAtomic(path_, "first", FastOptions()).ok());
  ASSERT_TRUE(WriteFileAtomic(path_, "second", FastOptions()).ok());
  EXPECT_EQ(ReadBack(), "second");
}

TEST_F(FileIoTest, SyncedWriteAlsoWorks) {
  ASSERT_TRUE(WriteFileAtomic(path_, "durable").ok());
  EXPECT_EQ(ReadBack(), "durable");
}

TEST_F(FileIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(
      WriteFileAtomic("/nonexistent-dir/x.txt", "x", FastOptions(1)).ok());
}

// The regression pair the fault-tolerance work exists for: the old
// truncate-in-place path destroys the previous artifact when the write
// fails mid-stream, the atomic path cannot.
TEST_F(FileIoTest, TruncatingWriteCorruptsOnMidStreamFailure) {
  ASSERT_TRUE(WriteFileAtomic(path_, "precious artifact", FastOptions()).ok());
  Failpoints::Get().Arm("io.write.stream");
  EXPECT_FALSE(WriteStringToFileTruncating(path_, "replacement").ok());
  // The destination was already truncated when the failure hit: the old
  // content is gone and automation would read a corrupt empty artifact.
  EXPECT_EQ(ReadBack(), "");
}

TEST_F(FileIoTest, AtomicWriteLeavesDestinationIntactOnFailure) {
  ASSERT_TRUE(WriteFileAtomic(path_, "precious artifact", FastOptions()).ok());
  for (const char* site :
       {"io.write.open", "io.write.write", "io.write.rename"}) {
    SCOPED_TRACE(site);
    Failpoints::Get().Arm(site);
    EXPECT_FALSE(WriteFileAtomic(path_, "replacement", FastOptions()).ok());
    Failpoints::Get().DisarmAll();
    // Every attempt failed, yet the previous artifact is byte-identical.
    EXPECT_EQ(ReadBack(), "precious artifact");
  }
}

TEST_F(FileIoTest, SyncFailureAlsoLeavesDestinationIntact) {
  ASSERT_TRUE(WriteFileAtomic(path_, "precious artifact").ok());
  Failpoints::Get().Arm("io.write.sync");
  AtomicWriteOptions options;
  options.max_attempts = 2;
  options.retry_backoff = std::chrono::milliseconds(0);
  EXPECT_FALSE(WriteFileAtomic(path_, "replacement", options).ok());
  Failpoints::Get().DisarmAll();
  EXPECT_EQ(ReadBack(), "precious artifact");
}

TEST_F(FileIoTest, RetrySucceedsAfterTransientFailure) {
  obs::Counter* retries =
      obs::MetricsRegistry::Get().counter("io.write.retries");
  const int64_t before = retries->Value();
  Failpoints::ArmSpec spec;
  spec.fires = 1;  // first attempt fails, second goes through
  Failpoints::Get().Arm("io.write.write", spec);
  ASSERT_TRUE(WriteFileAtomic(path_, "eventually", FastOptions()).ok());
  EXPECT_EQ(ReadBack(), "eventually");
  EXPECT_EQ(retries->Value(), before + 1);
}

TEST_F(FileIoTest, ExhaustedRetriesCountedAsFailure) {
  obs::Counter* failures =
      obs::MetricsRegistry::Get().counter("io.write.failures");
  const int64_t before = failures->Value();
  Failpoints::Get().Arm("io.write.rename");
  const Status status = WriteFileAtomic(path_, "never", FastOptions(2));
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(failures->Value(), before + 1);
  // Both attempts hit the failpoint: the retry loop really ran twice.
  EXPECT_EQ(Failpoints::Get().HitCount("io.write.rename"), 2);
}

TEST_F(FileIoTest, InjectedStatusPropagatesVerbatim) {
  Failpoints::ArmSpec spec;
  spec.status = Status::Internal("disk on fire");
  Failpoints::Get().Arm("io.write.open", spec);
  const Status status = WriteFileAtomic(path_, "x", FastOptions(1));
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(BackoffDelayTest, StaysWithinDecorrelatedJitterBounds) {
  using std::chrono::milliseconds;
  const milliseconds base{5};
  const milliseconds cap{1000};
  Rng rng(0xC0FFEEull);
  milliseconds prev = base;
  for (int step = 0; step < 200; ++step) {
    const milliseconds bound = std::max(base, prev * 3);
    const milliseconds next = NextBackoffDelay(base, prev, cap, &rng);
    EXPECT_GE(next.count(), base.count()) << "step " << step;
    EXPECT_LE(next.count(), std::min(bound, cap).count()) << "step " << step;
    prev = next;
  }
}

TEST(BackoffDelayTest, CapBoundsEveryDelay) {
  using std::chrono::milliseconds;
  Rng rng(7);
  milliseconds prev{400};
  for (int step = 0; step < 50; ++step) {
    prev = NextBackoffDelay(milliseconds{5}, prev, milliseconds{50}, &rng);
    EXPECT_LE(prev.count(), 50) << "step " << step;
    EXPECT_GE(prev.count(), 5) << "step " << step;
  }
}

TEST(BackoffDelayTest, SequenceIsReproduciblePerSeedAndJitters) {
  using std::chrono::milliseconds;
  const auto sequence = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<int64_t> delays;
    milliseconds prev{5};
    for (int step = 0; step < 20; ++step) {
      prev = NextBackoffDelay(milliseconds{5}, prev, milliseconds{1000},
                              &rng);
      delays.push_back(prev.count());
    }
    return delays;
  };
  // Deterministic per seed: the same seed replays the same delays.
  EXPECT_EQ(sequence(42), sequence(42));
  // Decorrelated across seeds: two writers that failed at the same instant
  // must not march in lockstep (the whole point of jitter).
  EXPECT_NE(sequence(42), sequence(43));
  // And it actually jitters: a 20-step sequence is not one constant value.
  const std::vector<int64_t> delays = sequence(42);
  EXPECT_GT(std::set<int64_t>(delays.begin(), delays.end()).size(), 1u);
}

TEST(BackoffDelayTest, ZeroBaseDisablesSleeping) {
  using std::chrono::milliseconds;
  Rng rng(1);
  EXPECT_EQ(
      NextBackoffDelay(milliseconds{0}, milliseconds{64}, milliseconds{100},
                       &rng)
          .count(),
      0);
}

TEST_F(FileIoTest, WriteStringToFileIsAtomicNow) {
  // util/csv.h's WriteStringToFile routes through WriteFileAtomic, so the
  // mid-stream corruption above is unreachable through the public artifact
  // writers.
  ASSERT_TRUE(WriteStringToFile(path_, "precious artifact").ok());
  Failpoints::Get().Arm("io.write.rename");
  EXPECT_FALSE(WriteStringToFile(path_, "replacement").ok());
  Failpoints::Get().DisarmAll();
  EXPECT_EQ(ReadBack(), "precious artifact");
}

}  // namespace
}  // namespace culevo

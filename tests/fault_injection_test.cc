// End-to-end fault-injection suite for the fault-tolerant execution
// layer: replica error isolation (fail_fast / tolerate_k / retries),
// cooperative cancellation and deadlines, and the RunReport ledger.
//
// Failpoint-based cases run RunSimulation serially: failpoint skip/fires
// counters are hit-order based, and only the serial path has a
// deterministic hit order. Scheduling-independent cases (serial == pool)
// instead use a wrapper model that fails for specific replica seeds.

#include <gtest/gtest.h>

#include <string>

#include "analysis/eclat.h"
#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "core/simulation.h"
#include "lexicon/world_lexicon.h"
#include "util/cancel.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace culevo {
namespace {

CuisineContext SmallContext() {
  CuisineContext context;
  context.cuisine = 0;
  for (IngredientId id = 0; id < 100; ++id) {
    context.ingredients.push_back(id);
  }
  context.popularity.assign(100, 0.5);
  context.mean_recipe_size = 6;
  context.target_recipes = 160;
  context.phi = 0.5;
  return context;
}

/// Delegates to an inner model but fails every attempt whose seed is in a
/// deny list. Seeds identify replicas/attempts independently of thread
/// scheduling, so this injects deterministic faults even on a pool.
class SeedDenyModel : public EvolutionModel {
 public:
  SeedDenyModel(const EvolutionModel* inner, std::vector<uint64_t> deny)
      : inner_(inner), deny_(std::move(deny)) {}

  std::string name() const override { return "deny(" + inner_->name() + ")"; }

  Status Generate(const CuisineContext& context, uint64_t seed,
                  GeneratedRecipes* out) const override {
    CULEVO_RETURN_IF_ERROR(CheckSeed(seed));
    return inner_->Generate(context, seed, out);
  }

  Status GenerateInto(const CuisineContext& context, uint64_t seed,
                      RecipeStore* store) const override {
    CULEVO_RETURN_IF_ERROR(CheckSeed(seed));
    return inner_->GenerateInto(context, seed, store);
  }

 private:
  Status CheckSeed(uint64_t seed) const {
    for (uint64_t denied : deny_) {
      if (seed == denied) return Status::Internal("injected replica fault");
    }
    return Status::Ok();
  }

  const EvolutionModel* inner_;
  std::vector<uint64_t> deny_;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Get().DisarmAll(); }
};

TEST_F(FaultInjectionTest, TolerateKSurvivorsBitIdenticalToCleanRun) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  SimulationConfig config;
  config.replicas = 4;
  config.seed = 21;

  Result<SimulationResult> clean =
      RunSimulation(model, SmallContext(), lexicon, config);
  ASSERT_TRUE(clean.ok());

  // Serial run: the third generate call is replica 2's first attempt.
  Failpoints::ArmSpec spec;
  spec.skip = 2;
  spec.fires = 1;
  Failpoints::Get().Arm("sim.replica.generate", spec);
  config.failure_policy = FailurePolicy::kTolerateK;
  config.tolerate_k = 1;
  Result<SimulationResult> degraded =
      RunSimulation(model, SmallContext(), lexicon, config);
  Failpoints::Get().DisarmAll();
  ASSERT_TRUE(degraded.ok());

  const RunReport& report = degraded->report;
  EXPECT_EQ(report.replicas_requested, 4);
  EXPECT_EQ(report.replicas_succeeded, 3);
  EXPECT_EQ(report.replicas_failed, 1);
  EXPECT_TRUE(report.degraded());
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].replica, 2);
  EXPECT_EQ(report.incidents[0].status.code(), StatusCode::kIOError);

  // The failed replica's slot is empty; the survivors are bit-identical
  // to the fault-free run of the same seeds.
  ASSERT_EQ(degraded->replica_ingredient_curves.size(), 4u);
  EXPECT_TRUE(degraded->replica_ingredient_curves[2].empty());
  for (size_t k : {0u, 1u, 3u}) {
    EXPECT_EQ(degraded->replica_ingredient_curves[k].values(),
              clean->replica_ingredient_curves[k].values())
        << "replica " << k;
  }
  // Degraded aggregate differs from the full aggregate (3 curves vs 4).
  EXPECT_NE(degraded->ingredient_curve.values(),
            clean->ingredient_curve.values());
}

TEST_F(FaultInjectionTest, FailFastReturnsReplicaError) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  Failpoints::ArmSpec spec;
  spec.fires = 1;
  Failpoints::Get().Arm("sim.replica.generate", spec);
  SimulationConfig config;
  config.replicas = 3;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(FaultInjectionTest, ToleranceBudgetExceededFails) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  Failpoints::Get().Arm("sim.replica.generate");  // every replica fails
  SimulationConfig config;
  config.replicas = 3;
  config.failure_policy = FailurePolicy::kTolerateK;
  config.tolerate_k = 1;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(FaultInjectionTest, MiningFailpointIsolatedLikeGeneration) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  Failpoints::ArmSpec spec;
  spec.fires = 1;
  Failpoints::Get().Arm("sim.replica.mine", spec);
  SimulationConfig config;
  config.replicas = 2;
  config.failure_policy = FailurePolicy::kTolerateK;
  config.tolerate_k = 1;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.replicas_failed, 1);
  EXPECT_EQ(result->report.incidents[0].replica, 0);
}

TEST_F(FaultInjectionTest, RetryRecoversAndRecordsIncident) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  Failpoints::ArmSpec spec;
  spec.fires = 1;  // replica 0's first attempt fails, its retry passes
  Failpoints::Get().Arm("sim.replica.generate", spec);
  SimulationConfig config;
  config.replicas = 3;
  config.seed = 21;
  config.max_replica_retries = 1;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  ASSERT_TRUE(result.ok());
  const RunReport& report = result->report;
  EXPECT_EQ(report.replicas_failed, 0);
  EXPECT_FALSE(report.degraded());
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].replica, 0);
  EXPECT_TRUE(report.incidents[0].status.ok());
  EXPECT_EQ(report.incidents[0].retries, 1);
  EXPECT_EQ(report.total_retries(), 1);

  // The recovered replica used the derived retry seed, so its curve
  // matches a direct run of that seed's replica — deterministic, not
  // scheduling-dependent. Replicas 1 and 2 saw no fault at all.
  Result<SimulationResult> clean =
      RunSimulation(model, SmallContext(), lexicon, config);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(result->replica_ingredient_curves[1].values(),
            clean->replica_ingredient_curves[1].values());
  EXPECT_EQ(result->replica_ingredient_curves[2].values(),
            clean->replica_ingredient_curves[2].values());
}

TEST_F(FaultInjectionTest, RetryBudgetExhaustedFails) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  Failpoints::Get().Arm("sim.replica.generate");  // fails every attempt
  SimulationConfig config;
  config.replicas = 1;
  config.max_replica_retries = 2;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  EXPECT_FALSE(result.ok());
  // 1 initial attempt + 2 retries.
  EXPECT_EQ(Failpoints::Get().HitCount("sim.replica.generate"), 3);
}

TEST_F(FaultInjectionTest, SerialEqualsPoolUnderToleratedFault) {
  const Lexicon& lexicon = WorldLexicon();
  const auto inner = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = 6;
  config.seed = 33;
  config.failure_policy = FailurePolicy::kTolerateK;
  config.tolerate_k = 1;
  // Deny replica 4's canonical seed: it fails wherever it is scheduled.
  const SeedDenyModel model(inner.get(), {DeriveSeed(config.seed, 4)});

  Result<SimulationResult> serial =
      RunSimulation(model, SmallContext(), lexicon, config, nullptr);
  ThreadPool pool(4);
  Result<SimulationResult> parallel =
      RunSimulation(model, SmallContext(), lexicon, config, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->report.replicas_failed, 1);
  EXPECT_EQ(parallel->report.replicas_failed, 1);
  ASSERT_EQ(parallel->report.incidents.size(), 1u);
  EXPECT_EQ(parallel->report.incidents[0].replica, 4);
  EXPECT_EQ(serial->ingredient_curve.values(),
            parallel->ingredient_curve.values());
  EXPECT_EQ(serial->category_curve.values(),
            parallel->category_curve.values());
}

TEST_F(FaultInjectionTest, RetrySeedDeniedFallsThroughDeterministically) {
  // Deny replica 1's canonical seed but allow its retry seed: the replica
  // recovers on attempt 1 identically under serial and pool execution.
  const Lexicon& lexicon = WorldLexicon();
  const auto inner = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = 3;
  config.seed = 7;
  config.max_replica_retries = 1;
  const SeedDenyModel model(inner.get(), {DeriveSeed(config.seed, 1)});

  Result<SimulationResult> serial =
      RunSimulation(model, SmallContext(), lexicon, config, nullptr);
  ThreadPool pool(3);
  Result<SimulationResult> parallel =
      RunSimulation(model, SmallContext(), lexicon, config, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->report.total_retries(), 1);
  EXPECT_EQ(parallel->report.total_retries(), 1);
  EXPECT_EQ(serial->replica_ingredient_curves[1].values(),
            parallel->replica_ingredient_curves[1].values());
  EXPECT_EQ(serial->ingredient_curve.values(),
            parallel->ingredient_curve.values());
}

TEST_F(FaultInjectionTest, PreCancelledTokenReturnsCancelled) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  CancelToken token;
  token.Cancel();
  SimulationConfig config;
  config.replicas = 4;
  config.cancel = &token;
  Result<SimulationResult> serial =
      RunSimulation(model, SmallContext(), lexicon, config, nullptr);
  EXPECT_EQ(serial.status().code(), StatusCode::kCancelled);
  ThreadPool pool(2);
  Result<SimulationResult> parallel =
      RunSimulation(model, SmallContext(), lexicon, config, &pool);
  EXPECT_EQ(parallel.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultInjectionTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  CancelToken token;
  token.set_deadline(Deadline::AfterMillis(0));
  SimulationConfig config;
  config.replicas = 4;
  config.cancel = &token;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

/// Trips a CancelToken from inside the computation after a fixed number
/// of generate calls — a deterministic stand-in for an external Ctrl-C
/// landing mid-run.
class CancelAfterModel : public EvolutionModel {
 public:
  CancelAfterModel(const EvolutionModel* inner, CancelToken* token,
                   int calls_before_cancel)
      : inner_(inner), token_(token), fuse_(calls_before_cancel) {}

  std::string name() const override { return inner_->name(); }

  Status Generate(const CuisineContext& context, uint64_t seed,
                  GeneratedRecipes* out) const override {
    return inner_->Generate(context, seed, out);
  }

  Status GenerateInto(const CuisineContext& context, uint64_t seed,
                      RecipeStore* store) const override {
    if (--fuse_ == 0) token_->Cancel();
    return inner_->GenerateInto(context, seed, store);
  }

 private:
  const EvolutionModel* inner_;
  CancelToken* token_;
  mutable int fuse_;
};

TEST_F(FaultInjectionTest, MidRunCancelStopsWithinOneReplica) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel inner;
  CancelToken token;
  CancelAfterModel model(&inner, &token, 2);
  SimulationConfig config;
  config.replicas = 50;
  config.cancel = &token;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultInjectionTest, EclatHonoursPreCancelledToken) {
  TransactionSet transactions;
  for (int t = 0; t < 40; ++t) {
    transactions.Add({static_cast<Item>(t % 5), static_cast<Item>(5 + t % 7),
                      static_cast<Item>(12 + t % 3)});
  }
  CancelToken token;
  token.Cancel();
  EclatOptions options;
  options.cancel = &token;
  // A tripped token stops the miner before any root class is descended:
  // the "prefix of the mined classes" degenerates to nothing.
  EXPECT_TRUE(MineEclat(transactions, 2, options).empty());
  options.cancel = nullptr;
  EXPECT_FALSE(MineEclat(transactions, 2, options).empty());
}

TEST_F(FaultInjectionTest, RunReportToJsonRendersLedger) {
  RunReport report;
  report.replicas_requested = 4;
  report.replicas_succeeded = 3;
  report.replicas_failed = 1;
  report.incidents.push_back(
      ReplicaIncident{2, Status::IOError("injected failure"), 1});
  const std::string json = RunReportToJson(report);
  EXPECT_NE(json.find("\"replicas_requested\":4"), std::string::npos);
  EXPECT_NE(json.find("\"replicas_failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"replica\":2"), std::string::npos);
  EXPECT_NE(json.find("injected failure"), std::string::npos);
}

}  // namespace
}  // namespace culevo

#include "corpus/cuisine.h"

#include <gtest/gtest.h>

#include <set>

namespace culevo {
namespace {

TEST(CuisineTest, TwentyFiveRegions) {
  EXPECT_EQ(WorldCuisines().size(), 25u);
  EXPECT_EQ(kNumCuisines, 25);
}

TEST(CuisineTest, CodesAreUniqueAndNonEmpty) {
  std::set<std::string_view> codes;
  for (const CuisineInfo& info : WorldCuisines()) {
    EXPECT_FALSE(info.code.empty());
    EXPECT_TRUE(codes.insert(info.code).second) << info.code;
  }
}

TEST(CuisineTest, TableOneCountsMatchPaper) {
  // Spot-check the extremes called out in Section II.
  const CuisineInfo& italy = CuisineAt(CuisineFromCode("ITA").value());
  EXPECT_EQ(italy.paper_recipes, 23179);
  EXPECT_EQ(italy.paper_ingredients, 506);
  const CuisineInfo& cam = CuisineAt(CuisineFromCode("CAM").value());
  EXPECT_EQ(cam.paper_recipes, 470);
  const CuisineInfo& usa = CuisineAt(CuisineFromCode("USA").value());
  EXPECT_EQ(usa.paper_ingredients, 592);
  const CuisineInfo& kor = CuisineAt(CuisineFromCode("KOR").value());
  EXPECT_EQ(kor.paper_ingredients, 291);
}

TEST(CuisineTest, TotalsMatchTableOneSum) {
  // The printed Table-I rows sum to 158460 (the abstract's 158544 does not
  // match its own table; we embed the table as printed).
  EXPECT_EQ(TotalPaperRecipes(), 158460);
}

TEST(CuisineTest, FromCodeIsCaseInsensitive) {
  EXPECT_EQ(CuisineFromCode("ita").value(), CuisineFromCode("ITA").value());
  EXPECT_FALSE(CuisineFromCode("XYZ").ok());
  EXPECT_FALSE(CuisineFromCode("").ok());
}

TEST(CuisineTest, EveryCuisineHasFiveTopIngredients) {
  for (const CuisineInfo& info : WorldCuisines()) {
    for (std::string_view name : info.top_ingredients) {
      EXPECT_FALSE(name.empty()) << info.code;
    }
  }
}

TEST(CuisineTest, CalibrationParametersInRange) {
  for (const CuisineInfo& info : WorldCuisines()) {
    EXPECT_GT(info.mean_recipe_size, 2.0) << info.code;
    EXPECT_LT(info.mean_recipe_size, 38.0) << info.code;
    EXPECT_GE(info.liberty, 0.0) << info.code;
    EXPECT_LE(info.liberty, 1.0) << info.code;
    EXPECT_GT(info.paper_ingredients, 0) << info.code;
    EXPECT_GT(info.paper_recipes, 0) << info.code;
  }
}

TEST(CuisineTest, CuisineAtMatchesIndex) {
  for (int c = 0; c < kNumCuisines; ++c) {
    EXPECT_EQ(&CuisineAt(static_cast<CuisineId>(c)),
              &WorldCuisines()[static_cast<size_t>(c)]);
  }
}

}  // namespace
}  // namespace culevo

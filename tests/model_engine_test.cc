// Tests for the flat-arena model-simulation engine: RecipeStore semantics,
// fixed-seed goldens captured from the seed (pre-rebuild) engine, flat ==
// compat equivalence, serial == parallel determinism, and regressions for
// the three sampling/validation bugs fixed alongside the rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "core/simulation.h"
#include "lexicon/world_lexicon.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace culevo {
namespace {

// ---------------------------------------------------------------------------
// RecipeStore unit tests.

TEST(RecipeStoreTest, BuildsRecipesThroughOpenProtocol) {
  RecipeStore store;
  store.Reset(2, 5);
  EXPECT_TRUE(store.empty());

  store.BeginRecipe();
  store.AppendToOpen(3);
  store.AppendToOpen(1);
  EXPECT_EQ(store.open_size(), 2u);
  store.Commit();

  store.BeginRecipe();
  store.AppendToOpen(7);
  store.Commit();

  ASSERT_EQ(store.num_recipes(), 2u);
  EXPECT_EQ(store.num_items(), 3u);
  EXPECT_EQ(std::vector<PoolPos>(store.recipe(0).begin(),
                                 store.recipe(0).end()),
            (std::vector<PoolPos>{3, 1}));
  EXPECT_EQ(std::vector<PoolPos>(store.recipe(1).begin(),
                                 store.recipe(1).end()),
            (std::vector<PoolPos>{7}));
}

TEST(RecipeStoreTest, BeginRecipeFromCopiesMother) {
  RecipeStore store;
  store.Reset(4, 16);
  store.BeginRecipe();
  for (PoolPos p : {5, 9, 2}) store.AppendToOpen(p);
  store.Commit();

  store.BeginRecipeFrom(0);
  ASSERT_EQ(store.open_size(), 3u);
  store.open()[1] = 11;  // Mutate the copy; the mother must not change.
  store.Commit();

  EXPECT_EQ(std::vector<PoolPos>(store.recipe(0).begin(),
                                 store.recipe(0).end()),
            (std::vector<PoolPos>{5, 9, 2}));
  EXPECT_EQ(std::vector<PoolPos>(store.recipe(1).begin(),
                                 store.recipe(1).end()),
            (std::vector<PoolPos>{5, 11, 2}));
}

TEST(RecipeStoreTest, BeginRecipeFromSurvivesReallocation) {
  // Start from a store with no spare capacity so the tail copy reallocates
  // mid-operation (the classic self-insertion hazard).
  RecipeStore store;
  store.Reset(1, 0);
  store.BeginRecipe();
  for (PoolPos p = 0; p < 64; ++p) store.AppendToOpen(p);
  store.Commit();
  for (int round = 0; round < 6; ++round) {
    store.BeginRecipeFrom(store.num_recipes() - 1);
    store.Commit();
  }
  for (size_t i = 0; i < store.num_recipes(); ++i) {
    ASSERT_EQ(store.recipe(i).size(), 64u);
    for (PoolPos p = 0; p < 64; ++p) EXPECT_EQ(store.recipe(i)[p], p);
  }
}

TEST(RecipeStoreTest, EraseFromOpenPreservesOrder) {
  RecipeStore store;
  store.Reset(1, 4);
  store.BeginRecipe();
  for (PoolPos p : {4, 8, 15, 16}) store.AppendToOpen(p);
  store.EraseFromOpen(1);
  store.Commit();
  EXPECT_EQ(std::vector<PoolPos>(store.recipe(0).begin(),
                                 store.recipe(0).end()),
            (std::vector<PoolPos>{4, 15, 16}));
}

TEST(RecipeStoreTest, ResetRewindsAndSortCommittedSorts) {
  RecipeStore store;
  store.Reset(1, 3);
  store.BeginRecipe();
  store.AppendToOpen(2);
  store.Commit();
  store.Reset(2, 6);
  EXPECT_EQ(store.num_recipes(), 0u);
  EXPECT_EQ(store.num_items(), 0u);

  store.BeginRecipe();
  for (PoolPos p : {9, 1, 5}) store.AppendToOpen(p);
  store.Commit();
  store.SortCommitted();
  EXPECT_EQ(std::vector<PoolPos>(store.recipe(0).begin(),
                                 store.recipe(0).end()),
            (std::vector<PoolPos>{1, 5, 9}));
}

// ---------------------------------------------------------------------------
// Fixed-seed goldens. Curves and recipe-pool hashes below were captured
// from the seed engine (pre-rebuild, commit 7f8afb5) on the same context;
// the flat engine must reproduce them bit-for-bit because it consumes the
// RNG stream draw-for-draw identically.

CuisineContext GoldenContext() {
  CuisineContext context;
  context.cuisine = 0;
  for (IngredientId id = 0; id < 300; ++id) context.ingredients.push_back(id);
  context.popularity.assign(300, 0.5);
  context.mean_recipe_size = 9;
  context.target_recipes = 2000;
  context.phi = 300.0 / 2000.0;
  return context;
}

uint64_t HashRecipes(const GeneratedRecipes& recipes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64.
  for (const auto& recipe : recipes) {
    for (IngredientId id : recipe) {
      h ^= static_cast<uint64_t>(id) + 1;
      h *= 1099511628211ull;
    }
    h ^= 0xFFull;
    h *= 1099511628211ull;
  }
  return h;
}

struct ModelGolden {
  const char* name;
  uint64_t recipe_hash;  // Generate() at seed 7 on GoldenContext.
  size_t ingredient_curve_size;
  size_t category_curve_size;
  std::vector<double> ingredient_head;
  std::vector<double> category_head;
};

const std::vector<ModelGolden>& Goldens() {
  static const std::vector<ModelGolden>* goldens = new std::vector<
      ModelGolden>{
      {"CM-R",
       0x2d6329305d0d0ad4ull,
       485,
       392,
       {0.515625, 0.47000000000000008, 0.45343749999999999,
        0.43125000000000002, 0.41350000000000003, 0.40062499999999995,
        0.38800000000000001, 0.36449999999999994},
       {0.93950000000000011, 0.88406249999999997, 0.86493750000000003,
        0.77524999999999999, 0.74800000000000011, 0.72818749999999999}},
      {"CM-C",
       0x33f727f483f70e34ull,
       410,
       423,
       {0.55693750000000009, 0.51056250000000003, 0.47462500000000002,
        0.44493749999999999, 0.41506250000000006, 0.40218749999999992,
        0.36925000000000002, 0.33700000000000002},
       {0.97368750000000004, 0.92799999999999994, 0.91143750000000001,
        0.83412500000000001, 0.82156249999999997, 0.78075000000000006}},
      {"CM-M",
       0x7fa90fa5f7841098ull,
       359,
       411,
       {0.53793750000000007, 0.49012500000000003, 0.46106249999999993,
        0.42587499999999995, 0.40562500000000001, 0.39537500000000003,
        0.36075000000000007, 0.33918749999999998},
       {0.94862500000000016, 0.90525000000000011, 0.87381249999999988,
        0.78306249999999999, 0.77268749999999997, 0.74275000000000002}},
      {"NM",
       0xabf9b9bf0ca8fdaeull,
       59,
       317,
       {0.12406249999999999, 0.12093749999999998, 0.11856250000000002,
        0.1166875, 0.11568750000000001, 0.11487499999999999, 0.1140625,
        0.1136875},
       {0.91062499999999991, 0.78443750000000001, 0.74956250000000002,
        0.71043749999999994, 0.69737500000000008, 0.66849999999999998}},
  };
  return *goldens;
}

class GoldenModels {
 public:
  GoldenModels()
      : lexicon_(WorldLexicon()),
        cmr_(MakeCmR(&lexicon_)),
        cmc_(MakeCmC(&lexicon_)),
        cmm_(MakeCmM(&lexicon_)) {}

  const Lexicon& lexicon() const { return lexicon_; }

  const EvolutionModel& by_name(const std::string& name) const {
    if (name == "CM-R") return *cmr_;
    if (name == "CM-C") return *cmc_;
    if (name == "CM-M") return *cmm_;
    return nm_;
  }

 private:
  const Lexicon& lexicon_;
  std::unique_ptr<CopyMutateModel> cmr_;
  std::unique_ptr<CopyMutateModel> cmc_;
  std::unique_ptr<CopyMutateModel> cmm_;
  NullModel nm_;
};

TEST(ModelEngineGoldenTest, ReproducesSeedEngineRecipePools) {
  const GoldenModels models;
  const CuisineContext context = GoldenContext();
  for (const ModelGolden& golden : Goldens()) {
    GeneratedRecipes recipes;
    ASSERT_TRUE(
        models.by_name(golden.name).Generate(context, 7, &recipes).ok());
    EXPECT_EQ(HashRecipes(recipes), golden.recipe_hash) << golden.name;
  }
}

TEST(ModelEngineGoldenTest, ReproducesSeedEngineCurves) {
  const GoldenModels models;
  const CuisineContext context = GoldenContext();
  SimulationConfig config;
  config.replicas = 8;
  config.seed = 42;
  for (const ModelGolden& golden : Goldens()) {
    Result<SimulationResult> result = RunSimulation(
        models.by_name(golden.name), context, models.lexicon(), config);
    ASSERT_TRUE(result.ok()) << golden.name;
    ASSERT_EQ(result->ingredient_curve.size(), golden.ingredient_curve_size)
        << golden.name;
    ASSERT_EQ(result->category_curve.size(), golden.category_curve_size)
        << golden.name;
    for (size_t i = 0; i < golden.ingredient_head.size(); ++i) {
      EXPECT_EQ(result->ingredient_curve.values()[i],
                golden.ingredient_head[i])
          << golden.name << " ingredient rank " << i;
    }
    for (size_t i = 0; i < golden.category_head.size(); ++i) {
      EXPECT_EQ(result->category_curve.values()[i], golden.category_head[i])
          << golden.name << " category rank " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Flat-arena path vs the GeneratedRecipes compat path.

TEST(ModelEngineTest, FlatStoreMatchesCompatRecipes) {
  const GoldenModels models;
  const CuisineContext context = GoldenContext();
  for (const char* name : {"CM-R", "CM-C", "CM-M", "NM"}) {
    const EvolutionModel& model = models.by_name(name);
    GeneratedRecipes recipes;
    ASSERT_TRUE(model.Generate(context, 19, &recipes).ok());

    RecipeStore store;
    ASSERT_TRUE(model.GenerateInto(context, 19, &store).ok());
    GeneratedRecipes from_store;
    StoreToRecipes(store, context.ingredients, &from_store);
    EXPECT_EQ(recipes, from_store) << name;

    // Transaction builders agree between the two representations.
    const TransactionSet flat_t =
        StoreTransactions(store, context.ingredients);
    const TransactionSet compat_t = RecipesToTransactions(recipes);
    ASSERT_EQ(flat_t.size(), compat_t.size()) << name;
    for (size_t i = 0; i < flat_t.size(); ++i) {
      ASSERT_EQ(flat_t.transaction(i), compat_t.transaction(i)) << name;
    }
    const TransactionSet flat_c =
        StoreCategoryTransactions(store, context.ingredients,
                                  models.lexicon());
    const TransactionSet compat_c =
        RecipesToCategoryTransactions(recipes, models.lexicon());
    ASSERT_EQ(flat_c.size(), compat_c.size()) << name;
    for (size_t i = 0; i < flat_c.size(); ++i) {
      ASSERT_EQ(flat_c.transaction(i), compat_c.transaction(i)) << name;
    }
  }
}

TEST(ModelEngineTest, PackRecipesRoundTripsAndRejectsUnknownIds) {
  std::vector<IngredientId> ingredients = {2, 5, 9};
  GeneratedRecipes recipes = {{2, 9}, {5}};
  RecipeStore store;
  ASSERT_TRUE(PackRecipes(recipes, ingredients, &store).ok());
  GeneratedRecipes back;
  StoreToRecipes(store, ingredients, &back);
  EXPECT_EQ(back, recipes);

  GeneratedRecipes bad = {{2, 7}};
  EXPECT_EQ(PackRecipes(bad, ingredients, &store).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Seeded determinism: serial and thread-pool runs must agree bit-for-bit
// for every model (replica k is seeded via DeriveSeed regardless of which
// worker runs it).

TEST(ModelEngineTest, SerialEqualsParallelForAllModels) {
  const GoldenModels models;
  CuisineContext context = GoldenContext();
  context.target_recipes = 400;  // Keep the 4-model sweep fast.
  context.phi = 300.0 / 400.0;
  SimulationConfig config;
  config.replicas = 6;
  config.seed = 11;
  ThreadPool pool(4);
  for (const char* name : {"CM-R", "CM-C", "CM-M", "NM"}) {
    const EvolutionModel& model = models.by_name(name);
    Result<SimulationResult> serial =
        RunSimulation(model, context, models.lexicon(), config, nullptr);
    Result<SimulationResult> parallel =
        RunSimulation(model, context, models.lexicon(), config, &pool);
    ASSERT_TRUE(serial.ok()) << name;
    ASSERT_TRUE(parallel.ok()) << name;
    EXPECT_EQ(serial->ingredient_curve.values(),
              parallel->ingredient_curve.values())
        << name;
    EXPECT_EQ(serial->category_curve.values(),
              parallel->category_curve.values())
        << name;
    ASSERT_EQ(serial->replica_ingredient_curves.size(),
              parallel->replica_ingredient_curves.size());
    for (size_t k = 0; k < serial->replica_ingredient_curves.size(); ++k) {
      EXPECT_EQ(serial->replica_ingredient_curves[k].values(),
                parallel->replica_ingredient_curves[k].values())
          << name << " replica " << k;
    }
  }
}

TEST(ModelEngineTest, GenerateEmitsMetrics) {
  const GoldenModels models;
  CuisineContext context = GoldenContext();
  context.target_recipes = 100;
  context.phi = 3.0;
  obs::Counter* recipes_c =
      obs::MetricsRegistry::Get().counter("sim.generate.recipes");
  const int64_t before = recipes_c->Value();
  RecipeStore store;
  ASSERT_TRUE(
      models.by_name("CM-R").GenerateInto(context, 3, &store).ok());
  EXPECT_EQ(recipes_c->Value(), before + 100);
}

// ---------------------------------------------------------------------------
// Bugfix regressions.

// The seed engine fed mean_recipe_size == 0 straight into the mutation
// loop, where an empty recipe meant NextBounded(0) and an out-of-bounds
// read in release builds.
TEST(ModelEngineRegressionTest, ZeroMeanRecipeSizeIsInvalidArgument) {
  const GoldenModels models;
  CuisineContext context = GoldenContext();
  context.mean_recipe_size = 0;
  for (const char* name : {"CM-R", "NM"}) {
    GeneratedRecipes recipes;
    const Status status =
        models.by_name(name).Generate(context, 1, &recipes);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(ModelEngineRegressionTest, InvertedRecipeSizeBoundsAreRejected) {
  const Lexicon& lexicon = WorldLexicon();
  ModelParams params;
  params.insert_prob = 0.2;
  params.delete_prob = 0.2;
  params.min_recipe_size = 10;
  params.max_recipe_size = 4;
  const CopyMutateModel model(&lexicon, params);
  GeneratedRecipes recipes;
  EXPECT_EQ(model.Generate(GoldenContext(), 1, &recipes).code(),
            StatusCode::kInvalidArgument);

  ModelParams zero_min = params;
  zero_min.min_recipe_size = 0;
  zero_min.max_recipe_size = 38;
  const CopyMutateModel zero_min_model(&lexicon, zero_min);
  EXPECT_EQ(zero_min_model.Generate(GoldenContext(), 1, &recipes).code(),
            StatusCode::kInvalidArgument);
}

// The seed engine stored pool positions as uint16_t with an unchecked
// narrowing cast: on a context of more than 65,535 ingredients, positions
// past 65,535 silently wrapped to the low positions. With the layout below
// every wrapped position lands on an ingredient with id 7, so id 9 never
// appears in seed output; the widened engine must produce it.
TEST(ModelEngineRegressionTest, WideContextsKeepHighPositions) {
  constexpr size_t kTotal = 66000;
  CuisineContext context;
  context.cuisine = 0;
  context.ingredients.resize(kTotal);
  for (size_t p = 0; p < kTotal; ++p) {
    context.ingredients[p] = (p < 65536) ? 7 : 9;
  }
  context.popularity.assign(kTotal, 0.5);
  context.mean_recipe_size = 40;
  context.target_recipes = 100;
  context.phi = 0.5;

  const NullModel model(static_cast<int>(kTotal));
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 21, &recipes).ok());
  ASSERT_EQ(recipes.size(), 100u);
  bool saw_high_position = false;
  for (const auto& recipe : recipes) {
    for (IngredientId id : recipe) {
      ASSERT_TRUE(id == 7 || id == 9);
      saw_high_position |= (id == 9);
    }
  }
  // 100 recipes x 40 draws over 66,000 positions, 464 of them high:
  // P(no high draw) < 1e-12.
  EXPECT_TRUE(saw_high_position);
}

}  // namespace
}  // namespace culevo

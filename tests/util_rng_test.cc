#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace culevo {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(13);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), n / 100);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(DeriveSeedTest, StreamsAreDistinctAndDeterministic) {
  std::set<uint64_t> seeds;
  for (uint64_t k = 0; k < 1000; ++k) {
    seeds.insert(DeriveSeed(42, k));
    EXPECT_EQ(DeriveSeed(42, k), DeriveSeed(42, k));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64Next(&state);
  const uint64_t second = SplitMix64Next(&state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace culevo

// Kill-and-resume integration tests: a checkpointed run killed by a
// wall-clock deadline (the CLI's --timeout-ms path) is resumed and must
// reproduce the uninterrupted run bit-for-bit, no matter how many
// replicas the first attempt managed to finish. Also covers the
// evaluator-level workflow the CLI drives: several models over one
// cuisine, killed during a later model's run, resumed to completion —
// and the fabric-era variant: a real worker process SIGKILLed mid-shard,
// recovered by the coordinator's merge + resume pass.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/copy_mutate.h"
#include "core/evaluator.h"
#include "core/null_model.h"
#include "core/simulation.h"
#include "fabric_test_context.h"
#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/subprocess.h"

namespace culevo {
namespace {

CuisineContext SmallContext() { return FabricTestContext(); }

/// Transparent wrapper that trips a CancelToken after a fixed number of
/// generate calls; delegates name() and ConfigFingerprint() so the
/// checkpoint manifest it writes is resumable by the bare model.
class InterruptModel : public EvolutionModel {
 public:
  InterruptModel(const EvolutionModel* inner, CancelToken* token, int fuse)
      : inner_(inner), token_(token), fuse_(fuse) {}

  std::string name() const override { return inner_->name(); }
  uint64_t ConfigFingerprint() const override {
    return inner_->ConfigFingerprint();
  }

  Status Generate(const CuisineContext& context, uint64_t seed,
                  GeneratedRecipes* out) const override {
    return inner_->Generate(context, seed, out);
  }

  Status GenerateInto(const CuisineContext& context, uint64_t seed,
                      RecipeStore* store) const override {
    if (--fuse_ == 0) token_->Cancel();
    return inner_->GenerateInto(context, seed, store);
  }

 private:
  const EvolutionModel* inner_;
  CancelToken* token_;
  mutable int fuse_;
};

class KillResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Get().DisarmAll(); }

  std::string FreshDir(const std::string& tag) {
    const std::string dir =
        ::testing::TempDir() + "/culevo_kill_resume_" + tag + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    return dir;
  }

  static CheckpointOptions Checkpointed(const std::string& dir,
                                        bool resume) {
    CheckpointOptions options;
    options.directory = dir;
    options.resume = resume;
    options.sync = false;
    return options;
  }
};

void ExpectBitIdentical(const SimulationResult& resumed,
                        const SimulationResult& golden) {
  EXPECT_EQ(resumed.ingredient_curve.values(),
            golden.ingredient_curve.values());
  EXPECT_EQ(resumed.category_curve.values(),
            golden.category_curve.values());
  EXPECT_EQ(RunReportToJson(resumed.report),
            RunReportToJson(golden.report));
}

// The CLI's deadline path: a run killed by --timeout-ms leaves a journal,
// and a later --resume completes it bit-identically. The kill point is
// wall-clock dependent, so the first attempt may finish anywhere between
// zero and all replicas — resume must close whatever gap remains,
// including the degenerate ends of the range.
TEST_F(KillResumeTest, DeadlineKillThenResumeMatchesGolden) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  const CuisineContext context = SmallContext();

  SimulationConfig config;
  config.replicas = 5;
  config.seed = 77;
  Result<SimulationResult> golden =
      RunSimulation(*model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  // 0ms: dead on arrival, nothing completes. 5ms: dies somewhere in the
  // middle on most machines, or even completes — every outcome is legal.
  int attempt = 0;
  for (const int64_t timeout_ms : {0, 5}) {
    const std::string dir = FreshDir(std::to_string(attempt++));
    CancelToken token(Deadline::AfterMillis(timeout_ms));
    SimulationConfig killed = config;
    killed.cancel = &token;
    killed.checkpoint = Checkpointed(dir, false);
    Result<SimulationResult> interrupted =
        RunSimulation(*model, context, lexicon, killed);
    if (!interrupted.ok()) {
      EXPECT_EQ(interrupted.status().code(), StatusCode::kDeadlineExceeded)
          << "timeout " << timeout_ms << "ms";
    }

    SimulationConfig resumed_config = config;
    resumed_config.checkpoint = Checkpointed(dir, true);
    Result<SimulationResult> resumed =
        RunSimulation(*model, context, lexicon, resumed_config);
    ASSERT_TRUE(resumed.ok()) << "timeout " << timeout_ms << "ms";
    ExpectBitIdentical(resumed.value(), golden.value());
  }
}

// The evaluator-level workflow the CLI drives: models share one
// checkpoint directory (one journal per model × cuisine). A kill during
// the *second* model's run leaves the first model's journal complete;
// resume restores it wholesale and finishes the rest.
TEST_F(KillResumeTest, EvaluateCuisineKilledMidModelResumes) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId bn = CuisineFromCode("BN").value();
  const RecipeCorpus corpus = [&]() {
    const CuisineProfile profile = BuildCuisineProfile(lexicon, bn, 3);
    SynthConfig synth;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(SynthesizeCuisine(lexicon, profile, synth, 300, &builder));
    return builder.Build();
  }();

  const auto cm_r = MakeCmR(&lexicon);
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 3;
  config.seed = 11;

  const std::vector<const EvolutionModel*> models = {cm_r.get(), &nm};
  Result<CuisineEvaluation> golden =
      EvaluateCuisine(corpus, bn, lexicon, models, config);
  ASSERT_TRUE(golden.ok());

  // Kill during the null model's second replica: CM-R's journal is
  // complete, NM's holds one replica.
  const std::string dir = FreshDir("eval");
  CancelToken token;
  InterruptModel nm_killer(&nm, &token, 2);
  const std::vector<const EvolutionModel*> killed_models = {cm_r.get(),
                                                            &nm_killer};
  SimulationConfig killed = config;
  killed.cancel = &token;
  killed.checkpoint = Checkpointed(dir, false);
  Result<CuisineEvaluation> interrupted =
      EvaluateCuisine(corpus, bn, lexicon, killed_models, killed);
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);

  SimulationConfig resumed_config = config;
  resumed_config.checkpoint = Checkpointed(dir, true);
  Result<CuisineEvaluation> resumed =
      EvaluateCuisine(corpus, bn, lexicon, models, resumed_config);
  ASSERT_TRUE(resumed.ok());

  ASSERT_EQ(resumed->scores.size(), golden->scores.size());
  for (size_t m = 0; m < golden->scores.size(); ++m) {
    const ModelScore& a = resumed->scores[m];
    const ModelScore& b = golden->scores[m];
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.mae_ingredient, b.mae_ingredient);
    EXPECT_EQ(a.mae_category, b.mae_category);
    EXPECT_EQ(a.ingredient_curve.values(), b.ingredient_curve.values());
    EXPECT_EQ(a.category_curve.values(), b.category_curve.values());
    EXPECT_EQ(RunReportToJson(a.report), RunReportToJson(b.report));
  }
  EXPECT_EQ(resumed->empirical_ingredient.values(),
            golden->empirical_ingredient.values());

  // A second resume restores everything and recomputes nothing new, still
  // matching the golden evaluation.
  Result<CuisineEvaluation> again =
      EvaluateCuisine(corpus, bn, lexicon, models, resumed_config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->scores[0].ingredient_curve.values(),
            golden->scores[0].ingredient_curve.values());
}

// The fabric-era kill: a real worker process (fabric_worker, the binary
// the exec-fabric suite dispatches) is SIGKILLed while journaling its
// shard — no graceful shutdown, possibly zero replicas landed. The
// coordinator-side merge + resume pass must absorb whatever survived,
// recompute the rest (including the entire unstarted shard 1), and match
// the single-process golden bit-for-bit.
TEST_F(KillResumeTest, WorkerSigkilledMidShardMergesAndResumes) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  const CuisineContext context = SmallContext();
  SimulationConfig config;
  config.replicas = 7;
  config.seed = 77;
  Result<SimulationResult> golden =
      RunSimulation(*model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  const std::string dir = FreshDir("worker_kill");
  Subprocess worker;
  SpawnOptions spawn;
  spawn.silence_stdout = true;
  spawn.silence_stderr = true;
  ASSERT_TRUE(worker
                  .Spawn({FABRIC_WORKER_PATH, "--checkpoint", dir,
                          "--replicas", "7", "--seed", "77", "--workers",
                          "2", "--worker-shard", "0"},
                         spawn)
                  .ok());

  // The shard journal appears the moment the worker opens it (the
  // manifest is flushed immediately); killing right after that lands the
  // SIGKILL mid-shard, before the worker can finish its units.
  bool journal_seen = false;
  for (int i = 0; i < 1500 && !journal_seen; ++i) {
    if (std::filesystem::exists(dir)) {
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().find(".shard0.") !=
            std::string::npos) {
          journal_seen = true;
          break;
        }
      }
    }
    if (!journal_seen) ::usleep(5 * 1000);
  }
  worker.Kill();

  // Merge + resume: shard 0's salvaged prefix is restored, shard 1 never
  // ran and is skipped as missing — the in-process pass closes both gaps.
  SimulationConfig resumed = config;
  resumed.checkpoint = Checkpointed(dir, true);
  resumed.checkpoint.merge_shards = 2;
  Result<SimulationResult> merged =
      RunSimulation(*model, context, lexicon, resumed);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value(), golden.value());
}

}  // namespace
}  // namespace culevo

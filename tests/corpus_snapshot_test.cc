#include "corpus/corpus_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/eclat.h"
#include "analysis/transactions.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "lexicon/world_lexicon.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace culevo {
namespace {

std::string TempPath(const char* tag) {
  return testing::TempDir() + "culevo_snapshot_" + tag + ".bin";
}

/// A corpus with several cuisines, duplicate-heavy recipes, and an empty
/// cuisine, so every section kind is exercised.
RecipeCorpus TestCorpus(size_t num_recipes = 200) {
  Rng rng(7);
  RecipeCorpus::Builder builder;
  for (size_t i = 0; i < num_recipes; ++i) {
    const CuisineId cuisine = static_cast<CuisineId>(rng.NextBounded(6));
    std::vector<IngredientId> ids;
    const size_t size = 2 + rng.NextBounded(9);
    for (size_t k = 0; k < size; ++k) {
      ids.push_back(static_cast<IngredientId>(rng.NextBounded(300)));
    }
    EXPECT_TRUE(builder.Add(cuisine, std::move(ids)).ok());
  }
  return builder.Build();
}

bool SameStats(const std::vector<CuisineStats>& a,
               const std::vector<CuisineStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].cuisine != b[i].cuisine ||
        a[i].num_recipes != b[i].num_recipes ||
        a[i].num_unique_ingredients != b[i].num_unique_ingredients ||
        a[i].mean_recipe_size != b[i].mean_recipe_size ||
        a[i].min_recipe_size != b[i].min_recipe_size ||
        a[i].max_recipe_size != b[i].max_recipe_size ||
        a[i].size_histogram != b[i].size_histogram) {
      return false;
    }
  }
  return true;
}

void ExpectBitIdentical(const RecipeCorpus& expected,
                        const RecipeCorpus& actual) {
  ASSERT_EQ(expected.num_recipes(), actual.num_recipes());
  EXPECT_TRUE(SameStats(ComputeCuisineStats(expected),
                        ComputeCuisineStats(actual)));
  for (int c = 0; c < 6; ++c) {
    const TransactionSet lhs =
        IngredientTransactions(expected, static_cast<CuisineId>(c));
    const TransactionSet rhs =
        IngredientTransactions(actual, static_cast<CuisineId>(c));
    ASSERT_EQ(lhs.size(), rhs.size());
    if (lhs.size() == 0) continue;
    const std::vector<Itemset> lhs_sets = MineEclat(lhs, 2);
    const std::vector<Itemset> rhs_sets = MineEclat(rhs, 2);
    ASSERT_EQ(lhs_sets.size(), rhs_sets.size());
    for (size_t i = 0; i < lhs_sets.size(); ++i) {
      EXPECT_EQ(lhs_sets[i].items, rhs_sets[i].items);
      EXPECT_EQ(lhs_sets[i].support, rhs_sets[i].support);
    }
  }
}

class CorpusSnapshotTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Failpoints::Get().DisarmAll();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(CorpusSnapshotTest, RoundTripMmap) {
  path_ = TempPath("roundtrip");
  const RecipeCorpus corpus = TestCorpus();
  SnapshotWriteOptions options;
  options.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, corpus, options).ok());

  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->memory_mapped);
  EXPECT_TRUE(loaded->corpus.borrowed());
  EXPECT_GT(loaded->file_bytes, 0u);
  EXPECT_TRUE(SameStats(loaded->stats, ComputeCuisineStats(corpus)));
  ExpectBitIdentical(corpus, loaded->corpus);
}

TEST_F(CorpusSnapshotTest, RoundTripBufferedFallback) {
  path_ = TempPath("fallback");
  const RecipeCorpus corpus = TestCorpus();
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, corpus, write).ok());

  SnapshotLoadOptions load;
  load.allow_mmap = false;
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_, load);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->memory_mapped);
  EXPECT_TRUE(loaded->corpus.borrowed());  // Views into the owned buffer.
  ExpectBitIdentical(corpus, loaded->corpus);
}

TEST_F(CorpusSnapshotTest, TsvAndSnapshotAgree) {
  path_ = TempPath("tsv_agree");
  const Lexicon& lexicon = WorldLexicon();
  Rng rng(11);
  RecipeCorpus::Builder builder;
  for (int i = 0; i < 150; ++i) {
    std::vector<IngredientId> ids;
    for (int k = 0; k < 5; ++k) {
      ids.push_back(static_cast<IngredientId>(rng.NextBounded(
          lexicon.size())));
    }
    ASSERT_TRUE(
        builder.Add(static_cast<CuisineId>(rng.NextBounded(kNumCuisines)),
                    std::move(ids))
            .ok());
  }
  const RecipeCorpus corpus = builder.Build();

  // TSV round trip (names resolve back to the same ids)...
  Result<RecipeCorpus> parsed =
      ParseCorpusTsv(FormatCorpusTsv(corpus, lexicon), lexicon);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ExpectBitIdentical(corpus, parsed.value());

  // ...and snapshot round trip, against the same reference.
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, corpus, write).ok());
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectBitIdentical(corpus, loaded->corpus);
}

TEST_F(CorpusSnapshotTest, LoadedCorpusSurvivesCopies) {
  path_ = TempPath("copies");
  const RecipeCorpus corpus = TestCorpus(50);
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, corpus, write).ok());
  RecipeCorpus copy;
  {
    Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
    ASSERT_TRUE(loaded.ok());
    RecipeCorpus inner = loaded->corpus;  // Copy shares the mapping.
    copy = inner;
  }  // Original loaded snapshot destroyed; backing must stay alive.
  ExpectBitIdentical(corpus, copy);
}

TEST_F(CorpusSnapshotTest, MissingFileIsNotFound) {
  Result<LoadedCorpusSnapshot> loaded =
      LoadCorpusSnapshot(TempPath("never_written"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorpusSnapshotTest, RefusesForeignFile) {
  path_ = TempPath("foreign");
  ASSERT_TRUE(WriteStringToFile(
                  path_, std::string(4096, 'x'))
                  .ok());
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CorpusSnapshotTest, RefusesWrongVersion) {
  path_ = TempPath("version");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(20), write).ok());
  Result<std::string> bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  std::string content = std::move(bytes).value();
  content[16] = 99;  // Version field (u32 little-endian at offset 16).
  ASSERT_TRUE(WriteStringToFile(path_, content).ok());
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CorpusSnapshotTest, RefusesForeignEndianness) {
  path_ = TempPath("endian");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(20), write).ok());
  Result<std::string> bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  std::string content = std::move(bytes).value();
  std::swap(content[20], content[23]);  // Byte-swap the endian marker.
  std::swap(content[21], content[22]);
  ASSERT_TRUE(WriteStringToFile(path_, content).ok());
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CorpusSnapshotTest, RefusesTruncation) {
  path_ = TempPath("truncated");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(), write).ok());
  Result<std::string> bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  const std::string content = std::move(bytes).value();
  // Cut at several depths: inside the header, inside the section table,
  // inside a payload.
  for (const size_t keep :
       {size_t{10}, size_t{100}, content.size() / 2, content.size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(path_, content.substr(0, keep)).ok());
    Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
    EXPECT_FALSE(loaded.ok()) << "survived truncation to " << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "truncation to " << keep << ": " << loaded.status();
  }
}

TEST_F(CorpusSnapshotTest, RefusesBitFlips) {
  path_ = TempPath("bitflip");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(), write).ok());
  Result<std::string> bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  const std::string content = std::move(bytes).value();
  // Flip one bit at several positions beyond the magic: header fields,
  // section table, section payloads.
  for (const size_t at : {size_t{25}, size_t{70}, content.size() / 2,
                          content.size() - 3}) {
    std::string corrupted = content;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x10);
    ASSERT_TRUE(WriteStringToFile(path_, corrupted).ok());
    Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
    EXPECT_FALSE(loaded.ok()) << "survived a bit flip at byte " << at;
  }
}

TEST_F(CorpusSnapshotTest, ReadFailpointInjects) {
  path_ = TempPath("failpoint");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(20), write).ok());
  Failpoints::Get().Arm("corpus.snapshot.read");
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  Failpoints::Get().DisarmAll();
  EXPECT_TRUE(LoadCorpusSnapshot(path_).ok());
}

TEST_F(CorpusSnapshotTest, CorruptFailpointForcesChecksumPath) {
  path_ = TempPath("corrupt_fp");
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, TestCorpus(20), write).ok());
  Failpoints::Get().Arm("corpus.snapshot.read.corrupt");
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(CorpusSnapshotTest, WriteFailpointInjects) {
  path_ = TempPath("write_fp");
  Failpoints::Get().Arm("corpus.snapshot.write");
  EXPECT_FALSE(WriteCorpusSnapshot(path_, TestCorpus(20)).ok());
  Failpoints::Get().DisarmAll();
}

TEST_F(CorpusSnapshotTest, EmptyCorpusRoundTrips) {
  path_ = TempPath("empty");
  RecipeCorpus::Builder builder;
  const RecipeCorpus corpus = builder.Build();
  SnapshotWriteOptions write;
  write.sync = false;
  ASSERT_TRUE(WriteCorpusSnapshot(path_, corpus, write).ok());
  Result<LoadedCorpusSnapshot> loaded = LoadCorpusSnapshot(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->corpus.num_recipes(), 0u);
}

}  // namespace
}  // namespace culevo

#include "core/sweeps.h"

#include <gtest/gtest.h>

#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/check.h"

namespace culevo {
namespace {

const RecipeCorpus& SweepCorpus() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    const Lexicon& lexicon = WorldLexicon();
    const CuisineId bn = CuisineFromCode("BN").value();
    const CuisineProfile profile = BuildCuisineProfile(lexicon, bn, 3);
    SynthConfig config;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(
        SynthesizeCuisine(lexicon, profile, config, 400, &builder));
    return *new RecipeCorpus(builder.Build());
  }();
  return corpus;
}

SimulationConfig FastConfig() {
  SimulationConfig config;
  config.replicas = 2;
  return config;
}

TEST(SweepTest, MixtureProbProducesOnePointPerValue) {
  const CuisineId bn = CuisineFromCode("BN").value();
  ModelParams base;
  base.mutations = 6;
  Result<std::vector<SweepPoint>> sweep =
      SweepMixtureProb(SweepCorpus(), bn, WorldLexicon(), {0.0, 0.5, 1.0},
                       base, FastConfig());
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  EXPECT_DOUBLE_EQ((*sweep)[0].value, 0.0);
  EXPECT_DOUBLE_EQ((*sweep)[2].value, 1.0);
  for (const SweepPoint& point : sweep.value()) {
    EXPECT_GE(point.mae_ingredient, 0.0);
    EXPECT_GE(point.mae_category, 0.0);
  }
}

TEST(SweepTest, MutationCountPassesValuesThrough) {
  const CuisineId bn = CuisineFromCode("BN").value();
  ModelParams base;
  Result<std::vector<SweepPoint>> sweep = SweepMutationCount(
      SweepCorpus(), bn, WorldLexicon(), {1, 4, 8}, base, FastConfig());
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 3u);
  EXPECT_DOUBLE_EQ((*sweep)[1].value, 4.0);
}

TEST(SweepTest, SizeMutationRateSweep) {
  const CuisineId bn = CuisineFromCode("BN").value();
  ModelParams base;
  Result<std::vector<SweepPoint>> sweep = SweepSizeMutationRate(
      SweepCorpus(), bn, WorldLexicon(), {0.0, 0.2}, base, FastConfig());
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->size(), 2u);
}

TEST(SweepTest, EmptySweepIsEmpty) {
  const CuisineId bn = CuisineFromCode("BN").value();
  ModelParams base;
  Result<std::vector<SweepPoint>> sweep = SweepMutationCount(
      SweepCorpus(), bn, WorldLexicon(), {}, base, FastConfig());
  ASSERT_TRUE(sweep.ok());
  EXPECT_TRUE(sweep->empty());
}

TEST(SweepTest, BadCuisinePropagatesError) {
  ModelParams base;
  Result<std::vector<SweepPoint>> sweep =
      SweepMutationCount(SweepCorpus(), CuisineFromCode("ITA").value(),
                         WorldLexicon(), {4}, base, FastConfig());
  EXPECT_FALSE(sweep.ok());
}

}  // namespace
}  // namespace culevo

#include "text/stemmer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace culevo {
namespace {

using StemCase = std::pair<const char*, const char*>;

class StemTokenTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(StemTokenTest, StemsAsExpected) {
  const auto [input, expected] = GetParam();
  EXPECT_EQ(StemToken(input), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, StemTokenTest,
    ::testing::Values(
        // *ies -> *y
        StemCase{"berries", "berry"}, StemCase{"cherries", "cherry"},
        // *oes -> *o
        StemCase{"tomatoes", "tomato"}, StemCase{"potatoes", "potato"},
        // sibilant *es
        StemCase{"peaches", "peach"}, StemCase{"radishes", "radish"},
        StemCase{"molasses", "molass"}, StemCase{"boxes", "box"},
        // plain s
        StemCase{"onions", "onion"}, StemCase{"carrots", "carrot"},
        StemCase{"leaves", "leave"},
        // protected endings
        StemCase{"swiss", "swiss"}, StemCase{"couscous", "couscous"},
        StemCase{"asparagus", "asparagus"}, StemCase{"basis", "basis"},
        // short tokens unchanged
        StemCase{"pea", "pea"}, StemCase{"oat", "oat"}, StemCase{"s", "s"},
        // already singular
        StemCase{"tomato", "tomato"}, StemCase{"garlic", "garlic"}));

TEST(StemPhraseTest, StemsEveryToken) {
  EXPECT_EQ(StemPhrase("roasted tomatoes and onions"),
            "roasted tomato and onion");
  EXPECT_EQ(StemPhrase(""), "");
  EXPECT_EQ(StemPhrase("single"), "single");
}

TEST(StemPhraseTest, Idempotent) {
  const std::string once = StemPhrase("berries leaves boxes");
  EXPECT_EQ(StemPhrase(once), once);
}

}  // namespace
}  // namespace culevo

#include "text/normalize.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace culevo {
namespace {

TEST(NormalizeTest, Lowercases) {
  EXPECT_EQ(NormalizeMention("TOMATO"), "tomato");
}

TEST(NormalizeTest, PunctuationBecomesBoundary) {
  EXPECT_EQ(NormalizeMention("extra-virgin olive_oil"),
            "extra virgin olive oil");
  EXPECT_EQ(NormalizeMention("salt, pepper"), "salt pepper");
}

TEST(NormalizeTest, CollapsesWhitespaceAndTrims) {
  EXPECT_EQ(NormalizeMention("  a   b  "), "a b");
}

TEST(NormalizeTest, FoldsAccents) {
  EXPECT_EQ(NormalizeMention("Crème Fraîche"), "creme fraiche");
  EXPECT_EQ(NormalizeMention("jalapeño"), "jalapeno");
  EXPECT_EQ(NormalizeMention("Gruyère"), "gruyere");
}

TEST(NormalizeTest, KeepsDigits) {
  EXPECT_EQ(NormalizeMention("7-up"), "7 up");
}

TEST(NormalizeTest, UnknownBytesBecomeBoundaries) {
  EXPECT_EQ(NormalizeMention("a\xF0\x9F\x8D\x95z"), "a z");
}

TEST(NormalizeTest, EmptyInput) {
  EXPECT_EQ(NormalizeMention(""), "");
  EXPECT_EQ(NormalizeMention("!!!"), "");
}

TEST(IsNormalizedCharTest, Alphabet) {
  EXPECT_TRUE(IsNormalizedChar('a'));
  EXPECT_TRUE(IsNormalizedChar('9'));
  EXPECT_TRUE(IsNormalizedChar(' '));
  EXPECT_FALSE(IsNormalizedChar('A'));
  EXPECT_FALSE(IsNormalizedChar('-'));
}

TEST(TokenizerTest, SplitsNormalizedText) {
  EXPECT_EQ(TokenizeNormalized("a b c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(TokenizeNormalized("").empty());
}

TEST(TokenizerTest, TokenizeMentionNormalizesFirst) {
  EXPECT_EQ(TokenizeMention("Soy-Sauce!"),
            (std::vector<std::string>{"soy", "sauce"}));
}

}  // namespace
}  // namespace culevo

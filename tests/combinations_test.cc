#include "analysis/combinations.h"

#include <gtest/gtest.h>

#include "lexicon/lexicon.h"

namespace culevo {
namespace {

TEST(AbsoluteSupportTest, CeilingWithFloorOfOne) {
  EXPECT_EQ(AbsoluteSupport(100, 0.05), 5u);
  EXPECT_EQ(AbsoluteSupport(101, 0.05), 6u);   // ceil(5.05).
  EXPECT_EQ(AbsoluteSupport(10, 0.001), 1u);   // Floor of 1.
  EXPECT_EQ(AbsoluteSupport(0, 0.05), 1u);
  EXPECT_EQ(AbsoluteSupport(1000, 1.0), 1000u);
}

TransactionSet SkewedTransactions() {
  TransactionSet out;
  // Items 0 and 1 co-occur everywhere; item 2 is present in 40%.
  for (int i = 0; i < 10; ++i) {
    if (i < 4) {
      out.Add({0, 1, 2});
    } else {
      out.Add({0, 1});
    }
  }
  return out;
}

TEST(MineCombinationsTest, RespectsRelativeSupport) {
  CombinationConfig config;
  config.min_relative_support = 0.5;
  const std::vector<Itemset> itemsets =
      MineCombinations(SkewedTransactions(), config);
  // Frequent at 50%: {0}, {1}, {0,1} (support 10 each); {2} misses (4).
  ASSERT_EQ(itemsets.size(), 3u);
  for (const Itemset& itemset : itemsets) EXPECT_EQ(itemset.support, 10u);
}

TEST(MineCombinationsTest, MinersAgree) {
  CombinationConfig eclat;
  eclat.miner = MinerKind::kEclat;
  CombinationConfig apriori;
  apriori.miner = MinerKind::kApriori;
  const auto a = MineCombinations(SkewedTransactions(), eclat);
  const auto b = MineCombinations(SkewedTransactions(), apriori);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].support, b[i].support);
  }
}

TEST(CombinationCurveTest, NormalizedByTransactionCount) {
  CombinationConfig config;
  config.min_relative_support = 0.3;
  const RankFrequency curve =
      CombinationCurve(SkewedTransactions(), config);
  // Frequent: {0},{1},{0,1} at 1.0 and {2},{0,2},{1,2},{0,1,2} at 0.4.
  ASSERT_EQ(curve.size(), 7u);
  EXPECT_DOUBLE_EQ(curve.at_rank(1), 1.0);
  EXPECT_DOUBLE_EQ(curve.at_rank(3), 1.0);
  EXPECT_DOUBLE_EQ(curve.at_rank(4), 0.4);
  EXPECT_DOUBLE_EQ(curve.at_rank(7), 0.4);
}

TEST(CombinationCurveTest, EmptyTransactions) {
  TransactionSet empty;
  EXPECT_TRUE(CombinationCurve(empty).empty());
}

TEST(CuisineCurvesTest, IngredientAndCategoryProjections) {
  Lexicon lexicon;
  const IngredientId basil = lexicon.Add("Basil", Category::kHerb).value();
  const IngredientId mint = lexicon.Add("Mint", Category::kHerb).value();
  const IngredientId salt = lexicon.Add("Salt", Category::kAdditive).value();

  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {basil, salt}).ok());
  ASSERT_TRUE(builder.Add(0, {mint, salt}).ok());
  const RecipeCorpus corpus = builder.Build();

  CombinationConfig config;
  config.min_relative_support = 0.9;
  // Ingredient level: only {Salt} appears in both recipes.
  const RankFrequency ingredient =
      IngredientCombinationCurve(corpus, 0, config);
  ASSERT_EQ(ingredient.size(), 1u);
  EXPECT_DOUBLE_EQ(ingredient.at_rank(1), 1.0);

  // Category level: both recipes project to {Herb, Additive}, so all three
  // category combinations are universal.
  const RankFrequency category =
      CategoryCombinationCurve(corpus, 0, lexicon, config);
  ASSERT_EQ(category.size(), 3u);
  EXPECT_DOUBLE_EQ(category.at_rank(3), 1.0);
}

TEST(TransactionProjectionTest, CategoryTransactionsDeduplicate) {
  Lexicon lexicon;
  const IngredientId basil = lexicon.Add("Basil", Category::kHerb).value();
  const IngredientId mint = lexicon.Add("Mint", Category::kHerb).value();
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {basil, mint}).ok());
  const RecipeCorpus corpus = builder.Build();

  const TransactionSet transactions =
      CategoryTransactions(corpus, 0, lexicon);
  ASSERT_EQ(transactions.size(), 1u);
  // Two herbs project to a single category item.
  EXPECT_EQ(transactions.transaction(0).size(), 1u);
  EXPECT_EQ(transactions.transaction(0)[0],
            static_cast<Item>(Category::kHerb));
}

}  // namespace
}  // namespace culevo

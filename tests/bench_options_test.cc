#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <vector>

namespace culevo::bench {
namespace {

/// Parses `args` (without argv[0]) into a BenchOptions, returning the
/// validation status alongside the options.
Status ParseInto(std::vector<const char*> args, BenchOptions* options) {
  args.insert(args.begin(), "bench_binary");
  Status parse = options->flags.Parse(static_cast<int>(args.size()),
                                      args.data());
  if (!parse.ok()) return parse;
  return ApplyParsedFlags(options);
}

TEST(BenchOptionsTest, DefaultsSurviveEmptyCommandLine) {
  BenchOptions options;
  ASSERT_TRUE(ParseInto({}, &options).ok());
  EXPECT_DOUBLE_EQ(options.scale, 0.25);
  EXPECT_EQ(options.replicas, 20);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_TRUE(options.json_path.empty());
}

// Regression: the --seed fallback used to be hardcoded to 42 instead of
// the struct default, so a caller-customized default was silently lost.
TEST(BenchOptionsTest, SeedFallbackUsesStructDefault) {
  BenchOptions options;
  options.seed = 1234;
  ASSERT_TRUE(ParseInto({}, &options).ok());
  EXPECT_EQ(options.seed, 1234u);
}

TEST(BenchOptionsTest, FlagsOverrideDefaults) {
  BenchOptions options;
  ASSERT_TRUE(ParseInto({"--scale", "0.5", "--replicas", "7", "--seed",
                         "99", "--json", "out.json"},
                        &options)
                  .ok());
  EXPECT_DOUBLE_EQ(options.scale, 0.5);
  EXPECT_EQ(options.replicas, 7);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_EQ(options.json_path, "out.json");
}

TEST(BenchOptionsTest, RejectsZeroReplicas) {
  BenchOptions options;
  const Status status = ParseInto({"--replicas", "0"}, &options);
  EXPECT_FALSE(status.ok());
}

TEST(BenchOptionsTest, RejectsNegativeReplicas) {
  BenchOptions options;
  const Status status = ParseInto({"--replicas", "-5"}, &options);
  EXPECT_FALSE(status.ok());
}

TEST(BenchOptionsTest, RejectsNonPositiveScale) {
  BenchOptions options;
  EXPECT_FALSE(ParseInto({"--scale", "0"}, &options).ok());
  BenchOptions negative;
  EXPECT_FALSE(ParseInto({"--scale", "-0.1"}, &negative).ok());
}

TEST(BenchOptionsTest, RejectsScaleAboveOne) {
  BenchOptions options;
  const Status status = ParseInto({"--scale", "1.5"}, &options);
  EXPECT_FALSE(status.ok());
}

TEST(BenchOptionsTest, RejectsValuelessJsonFlag) {
  // A bare `--json` parses as the literal "true"; without this check the
  // bench would write its telemetry to a file named `true`.
  BenchOptions options;
  const Status status = ParseInto({"--json"}, &options);
  EXPECT_FALSE(status.ok());
}

TEST(BenchOptionsTest, AcceptsBoundaryScaleOne) {
  BenchOptions options;
  ASSERT_TRUE(ParseInto({"--scale", "1.0"}, &options).ok());
  EXPECT_DOUBLE_EQ(options.scale, 1.0);
}

}  // namespace
}  // namespace culevo::bench

#include "analysis/export.h"

#include <gtest/gtest.h>

#include "util/csv.h"

namespace culevo {
namespace {

TEST(ExportTest, CurveToCsv) {
  const RankFrequency curve =
      RankFrequency::FromFrequencies({0.5, 0.25});
  EXPECT_EQ(CurveToCsv(curve), "rank,frequency\n1,0.5\n2,0.25\n");
  EXPECT_EQ(CurveToCsv(RankFrequency()), "rank,frequency\n");
}

TEST(ExportTest, CurvesToCsvAlignsAndPads) {
  const std::vector<RankFrequency> curves = {
      RankFrequency::FromFrequencies({0.5, 0.25, 0.125}),
      RankFrequency::FromFrequencies({0.75}),
  };
  const std::string csv = CurvesToCsv({"empirical", "model"}, curves);
  EXPECT_EQ(csv,
            "rank,empirical,model\n"
            "1,0.5,0.75\n"
            "2,0.25,\n"
            "3,0.125,\n");
  // The padded output must still parse as rectangular CSV.
  Result<DsvTable> parsed = ParseDsv(csv, ',');
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 4u);
  for (const auto& row : parsed->rows) EXPECT_EQ(row.size(), 3u);
}

TEST(ExportTest, HistogramToCsv) {
  EXPECT_EQ(HistogramToCsv({0, 2, 5}),
            "size,count\n0,0\n1,2\n2,5\n");
}

TEST(ExportTest, MatrixToCsv) {
  const std::string csv = MatrixToCsv(
      {"A", "B"}, {{0.0, 0.5}, {0.5, 0.0}});
  EXPECT_EQ(csv, ",A,B\nA,0,0.5\nB,0.5,0\n");
}

TEST(ExportTest, WriteCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/culevo_export.csv";
  ASSERT_TRUE(WriteCsv(path, "a,b\n1,2\n").ok());
  Result<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace culevo

#include "core/model_selection.h"

#include <gtest/gtest.h>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/check.h"

namespace culevo {
namespace {

const RecipeCorpus& SelectionCorpus() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    const Lexicon& lexicon = WorldLexicon();
    const CuisineId ee = CuisineFromCode("EE").value();
    const CuisineProfile profile = BuildCuisineProfile(lexicon, ee, 5);
    SynthConfig config;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(
        SynthesizeCuisine(lexicon, profile, config, 800, &builder));
    return *new RecipeCorpus(builder.Build());
  }();
  return corpus;
}

SimulationConfig FastConfig(int replicas = 6) {
  SimulationConfig config;
  config.replicas = replicas;
  config.seed = 21;
  return config;
}

TEST(BootstrapTest, ProducesOrderedIntervals) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ee = CuisineFromCode("EE").value();
  const auto cm_m = MakeCmM(&lexicon);
  const NullModel nm;

  Result<std::vector<ModelIntervalScore>> scores =
      BootstrapModelComparison(SelectionCorpus(), ee, lexicon,
                               {cm_m.get(), &nm}, FastConfig(), 100);
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 2u);
  for (const ModelIntervalScore& score : scores.value()) {
    EXPECT_LE(score.mae_low, score.mae_mean + 1e-12) << score.model;
    EXPECT_GE(score.mae_high + 1e-12, score.mae_mean) << score.model;
    EXPECT_GE(score.mae_low, 0.0);
  }
}

TEST(BootstrapTest, CopyMutateAndNullIntervalsSeparate) {
  // The headline gap should exceed simulation noise: the CM interval sits
  // entirely below the null interval.
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ee = CuisineFromCode("EE").value();
  const auto cm_m = MakeCmM(&lexicon);
  const NullModel nm;
  Result<std::vector<ModelIntervalScore>> scores =
      BootstrapModelComparison(SelectionCorpus(), ee, lexicon,
                               {cm_m.get(), &nm}, FastConfig(8), 200);
  ASSERT_TRUE(scores.ok());
  EXPECT_LT((*scores)[0].mae_high, (*scores)[1].mae_low);
}

TEST(BootstrapTest, InvalidArgumentsRejected) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ee = CuisineFromCode("EE").value();
  const NullModel nm;
  EXPECT_FALSE(BootstrapModelComparison(SelectionCorpus(), ee, lexicon, {},
                                        FastConfig(), 100)
                   .ok());
  EXPECT_FALSE(BootstrapModelComparison(SelectionCorpus(), ee, lexicon,
                                        {&nm}, FastConfig(), 0)
                   .ok());
}

TEST(SplitHalfTest, ReportsWinnersOnBothHalves) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineId ee = CuisineFromCode("EE").value();
  const auto cm_m = MakeCmM(&lexicon);
  const NullModel nm;
  Result<SplitHalfResult> result = SplitHalfStability(
      SelectionCorpus(), ee, lexicon, {cm_m.get(), &nm}, FastConfig(4));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->winner_first.empty());
  EXPECT_FALSE(result->winner_second.empty());
  EXPECT_EQ(result->stable,
            result->winner_first == result->winner_second);
  // Copy-mutate vs null is so lopsided that both halves agree.
  EXPECT_EQ(result->winner_first, "CM-M");
  EXPECT_TRUE(result->stable);
}

TEST(SplitHalfTest, EmptyModelsRejected) {
  const CuisineId ee = CuisineFromCode("EE").value();
  EXPECT_FALSE(SplitHalfStability(SelectionCorpus(), ee, WorldLexicon(), {},
                                  FastConfig())
                   .ok());
}

}  // namespace
}  // namespace culevo

// End-to-end integration tests: synthesize a world, run the full analysis
// and model-fitting pipeline, and assert the paper's qualitative results.

#include <gtest/gtest.h>

#include "analysis/combinations.h"
#include "analysis/distance.h"
#include "analysis/overrepresentation.h"
#include "analysis/summary.h"
#include "core/copy_mutate.h"
#include "core/evaluator.h"
#include "core/null_model.h"
#include "corpus/corpus_io.h"
#include "corpus/corpus_stats.h"
#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/check.h"

namespace culevo {
namespace {

/// A shared small world corpus (scale 0.02: ~3.2k recipes).
const RecipeCorpus& World() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    SynthConfig config;
    config.scale = 0.02;
    Result<RecipeCorpus> made =
        SynthesizeWorldCorpus(WorldLexicon(), config);
    CULEVO_CHECK_OK(made.status());
    return *new RecipeCorpus(std::move(made).value());
  }();
  return corpus;
}

TEST(IntegrationTest, WorldHasAllCuisines) {
  for (int c = 0; c < kNumCuisines; ++c) {
    EXPECT_GT(World().num_recipes_in(static_cast<CuisineId>(c)), 0u);
  }
}

TEST(IntegrationTest, Fig1SizesAreBoundedGaussian) {
  const std::vector<CuisineStats> stats = ComputeCuisineStats(World());
  for (const CuisineStats& s : stats) {
    ASSERT_GT(s.num_recipes, 0u);
    EXPECT_GE(s.min_recipe_size, 2);
    EXPECT_LE(s.max_recipe_size, 38);
  }
  const GaussianFit fit =
      FitGaussianToHistogram(AggregateSizeHistogram(World()));
  EXPECT_NEAR(fit.mean, 9.0, 1.0);
  EXPECT_LT(fit.tv_error, 0.1);
}

TEST(IntegrationTest, Fig3CurvesAreHomogeneous) {
  std::vector<RankFrequency> curves;
  for (int c = 0; c < kNumCuisines; ++c) {
    curves.push_back(
        IngredientCombinationCurve(World(), static_cast<CuisineId>(c)));
    EXPECT_FALSE(curves.back().empty());
  }
  const double mae = MeanOffDiagonal(PairwiseMae(curves));
  // Paper: 0.035 at full scale. Same order of magnitude here.
  EXPECT_LT(mae, 0.1);
  EXPECT_GT(mae, 0.001);
}

TEST(IntegrationTest, TableOneTopIngredientsRecovered) {
  const Lexicon& lexicon = WorldLexicon();
  int hits = 0;
  int total = 0;
  for (const char* code : {"ITA", "INSC", "FRA"}) {
    const CuisineId cuisine = CuisineFromCode(code).value();
    const auto top = TopOverrepresented(World(), cuisine, 5);
    for (std::string_view target :
         CuisineAt(cuisine).top_ingredients) {
      ++total;
      for (const OverrepresentationScore& s : top) {
        if (lexicon.name(s.ingredient) == target) {
          ++hits;
          break;
        }
      }
    }
  }
  EXPECT_GE(hits, total * 2 / 3);
}

TEST(IntegrationTest, CopyMutateBeatsNullAcrossCuisines) {
  const Lexicon& lexicon = WorldLexicon();
  const auto cm_r = MakeCmR(&lexicon);
  const auto cm_c = MakeCmC(&lexicon);
  const auto cm_m = MakeCmM(&lexicon);
  const NullModel nm;
  const std::vector<const EvolutionModel*> models = {cm_r.get(), cm_c.get(),
                                                     cm_m.get(), &nm};
  SimulationConfig config;
  config.replicas = 4;

  // Cuisines floored to ~30 recipes at this scale are a degenerate regime
  // (the paper's smallest cuisine has 470); test the mid-sized ones.
  for (const char* code : {"ITA", "MEX", "USA"}) {
    const CuisineId cuisine = CuisineFromCode(code).value();
    Result<CuisineEvaluation> evaluation =
        EvaluateCuisine(World(), cuisine, lexicon, models, config);
    ASSERT_TRUE(evaluation.ok()) << code;
    const double nm_mae = evaluation->scores[3].mae_ingredient;
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_LT(evaluation->scores[i].mae_ingredient, nm_mae)
          << code << " model " << evaluation->scores[i].model;
    }
    // The winner is one of the copy-mutate models, never the null model.
    EXPECT_LT(evaluation->BestByIngredientMae(), 3u) << code;
  }
}

TEST(IntegrationTest, CorpusSurvivesSerializationPipeline) {
  const Lexicon& lexicon = WorldLexicon();
  // Serialize a slice of the world (one cuisine) and re-analyze it.
  const CuisineId kor = CuisineFromCode("KOR").value();
  RecipeCorpus::Builder builder;
  for (uint32_t index : World().recipes_of(kor)) {
    const auto span = World().ingredients_of(index);
    ASSERT_TRUE(
        builder.Add(kor, std::vector<IngredientId>(span.begin(), span.end()))
            .ok());
  }
  const RecipeCorpus slice = builder.Build();

  const std::string serialized = FormatCorpusTsv(slice, lexicon);
  Result<RecipeCorpus> reloaded = ParseCorpusTsv(serialized, lexicon);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->num_recipes(), slice.num_recipes());

  // The reloaded corpus yields the identical combination curve.
  const RankFrequency before = IngredientCombinationCurve(slice, kor);
  const RankFrequency after =
      IngredientCombinationCurve(reloaded.value(), kor);
  EXPECT_EQ(before.values(), after.values());
}

TEST(IntegrationTest, MinersAgreeOnRealCuisine) {
  const CuisineId scnd = CuisineFromCode("SCND").value();
  CombinationConfig eclat;
  eclat.miner = MinerKind::kEclat;
  CombinationConfig apriori;
  apriori.miner = MinerKind::kApriori;
  const RankFrequency a = IngredientCombinationCurve(World(), scnd, eclat);
  const RankFrequency b =
      IngredientCombinationCurve(World(), scnd, apriori);
  EXPECT_EQ(a.values(), b.values());
}

}  // namespace
}  // namespace culevo

// Fabric supervision and shard-merge tests: spawn the fabric_worker
// helper binary (path injected as FABRIC_WORKER_PATH) across shards of
// the shared FabricTestContext run, inject worker deaths / stalls /
// permanent failures, and verify the merged resume pass reproduces the
// single-process golden result bit-for-bit in every recovery scenario.

#include "exec/fabric.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/copy_mutate.h"
#include "core/simulation.h"
#include "fabric_test_context.h"
#include "lexicon/world_lexicon.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace culevo {
namespace {

constexpr int kReplicas = 7;
constexpr uint64_t kSeed = 77;

class FabricTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Get().DisarmAll(); }

  std::string FreshDir() {
    const std::string dir =
        ::testing::TempDir() + "/culevo_fabric_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    return dir;
  }

  /// The single-process result every recovery path must reproduce.
  const SimulationResult& Golden() {
    static const SimulationResult golden = [] {
      const Lexicon& lexicon = WorldLexicon();
      const auto model = MakeCmR(&lexicon);
      SimulationConfig config;
      config.replicas = kReplicas;
      config.seed = kSeed;
      Result<SimulationResult> result =
          RunSimulation(*model, FabricTestContext(), lexicon, config);
      CULEVO_CHECK_OK(result.status());
      return std::move(result).value();
    }();
    return golden;
  }

  static std::vector<std::string> WorkerArgv(
      const std::string& dir, int workers,
      std::vector<std::string> extra = {}) {
    std::vector<std::string> argv = {
        FABRIC_WORKER_PATH,
        "--checkpoint", dir,
        "--replicas", std::to_string(kReplicas),
        "--seed", std::to_string(kSeed),
        "--workers", std::to_string(workers),
    };
    for (std::string& arg : extra) argv.push_back(std::move(arg));
    return argv;
  }

  static FabricOptions FastFabric(const std::string& dir, int workers) {
    FabricOptions options;
    options.workers = workers;
    options.checkpoint_dir = dir;
    options.retry_backoff_ms = 10;
    options.retry_backoff_cap_ms = 100;
    options.poll_ms = 5;
    return options;
  }

  /// The coordinator's final pass: merge the shard journals, resume the
  /// remainder in-process, return the whole-run result.
  static Result<SimulationResult> RunMerged(const std::string& dir,
                                            int workers) {
    const Lexicon& lexicon = WorldLexicon();
    const auto model = MakeCmR(&lexicon);
    SimulationConfig config;
    config.replicas = kReplicas;
    config.seed = kSeed;
    config.checkpoint.directory = dir;
    config.checkpoint.resume = true;
    config.checkpoint.sync = false;
    config.checkpoint.merge_shards = workers;
    return RunSimulation(*model, FabricTestContext(), lexicon, config);
  }

  /// One shard of the run computed in this process (no subprocess), for
  /// the merge-layer tests that need direct control over shard journals.
  static Result<SimulationResult> RunShardInProcess(const std::string& dir,
                                                    int index, int count,
                                                    uint64_t seed = kSeed) {
    const Lexicon& lexicon = WorldLexicon();
    const auto model = MakeCmR(&lexicon);
    SimulationConfig config;
    config.replicas = kReplicas;
    config.seed = seed;
    config.checkpoint.directory = dir;
    config.checkpoint.resume = true;
    config.checkpoint.sync = false;
    config.shard.index = index;
    config.shard.count = count;
    return RunSimulation(*model, FabricTestContext(), lexicon, config);
  }

  static std::string FindShardJournal(const std::string& dir, int shard) {
    const std::string token = ".shard" + std::to_string(shard) + ".";
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.find(token) != std::string::npos) return entry.path().string();
    }
    return "";
  }

  static int64_t ReplicasRun() {
    return obs::MetricsRegistry::Get().counter("sim.replicas_run")->Value();
  }

  void ExpectBitIdentical(const SimulationResult& merged) {
    EXPECT_EQ(merged.ingredient_curve.values(),
              Golden().ingredient_curve.values());
    EXPECT_EQ(merged.category_curve.values(),
              Golden().category_curve.values());
    EXPECT_EQ(RunReportToJson(merged.report),
              RunReportToJson(Golden().report));
  }
};

TEST_F(FabricTest, CleanShardedRunMatchesGolden) {
  const std::string dir = FreshDir();
  Result<FabricReport> report =
      RunWorkerFabric(WorkerArgv(dir, 3), FastFabric(dir, 3));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->shards_completed, 3);
  EXPECT_EQ(report->shards_failed, 0);
  EXPECT_FALSE(report->degraded());
  EXPECT_EQ(report->total_retries(), 0);

  Result<SimulationResult> merged = RunMerged(dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value());
}

// The acceptance scenario's first leg: a worker SIGKILLed mid-shard (via
// the coordinator-side failpoint) is re-dispatched, resumes its own shard
// journal, and the merged output is still bit-identical.
TEST_F(FabricTest, SigkilledWorkerIsRedispatchedAndRecovers) {
  const std::string dir = FreshDir();
  Failpoints::ArmSpec spec;
  spec.fires = 1;  // exactly one worker killed, exactly once
  spec.skip = 3;   // let a few supervision ticks pass first
  Failpoints::Get().Arm("exec.fabric.kill_worker", spec);

  // The linger keeps workers alive across enough supervision ticks that
  // the kill is guaranteed to land on a live process.
  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 3, {"--linger-ms", "500"}), FastFabric(dir, 3));
  Failpoints::Get().DisarmAll();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->shards_completed, 3);
  EXPECT_GE(report->total_retries(), 1);
  ASSERT_FALSE(report->incidents.empty());

  Result<SimulationResult> merged = RunMerged(dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value());
}

TEST_F(FabricTest, CrashedWorkerRetriesWithinBudget) {
  const std::string dir = FreshDir();
  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 3, {"--fail-shard", "1"}), FastFabric(dir, 3));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->shards_completed, 3);
  EXPECT_FALSE(report->degraded());
  // The transient crash of shard 1 must be on the ledger as a recovered
  // incident, not silently absorbed.
  ASSERT_EQ(report->incidents.size(), 1u);
  EXPECT_EQ(report->incidents[0].shard, 1);
  EXPECT_TRUE(report->incidents[0].status.ok());
  EXPECT_GE(report->incidents[0].retries, 1);

  Result<SimulationResult> merged = RunMerged(dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value());
}

// The acceptance scenario's second leg: a worker that hangs past stall_ms
// is presumed dead, SIGKILLed, and re-dispatched; the fresh attempt picks
// up the stalled shard's journal.
TEST_F(FabricTest, StalledWorkerIsKilledAndRedispatched) {
  const std::string dir = FreshDir();
  FabricOptions options = FastFabric(dir, 3);
  options.stall_ms = 800;
  const int64_t stalls_before =
      obs::MetricsRegistry::Get().counter("exec.worker_stalls")->Value();

  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 3, {"--stall-shard", "0"}), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->shards_completed, 3);
  EXPECT_GE(report->total_retries(), 1);
  EXPECT_GE(
      obs::MetricsRegistry::Get().counter("exec.worker_stalls")->Value(),
      stalls_before + 1);

  Result<SimulationResult> merged = RunMerged(dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value());
}

TEST_F(FabricTest, PermanentShardFailureFailsFast) {
  const std::string dir = FreshDir();
  FabricOptions options = FastFabric(dir, 3);
  options.max_worker_retries = 1;
  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 3, {"--fail-shard-always", "2"}), options);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("failed permanently"),
            std::string::npos)
      << report.status();
}

// kTolerateK at worker granularity: a permanently dead shard is tolerated
// and its units are recovered by the coordinator's merge + resume pass —
// straggler recovery, with the final output still complete.
TEST_F(FabricTest, TolerateKRecoversFailedShardUnits) {
  const std::string dir = FreshDir();
  FabricOptions options = FastFabric(dir, 3);
  options.max_worker_retries = 1;
  options.failure_policy = FailurePolicy::kTolerateK;
  options.tolerate_k = 1;
  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 3, {"--fail-shard-always", "2"}), options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->degraded());
  EXPECT_EQ(report->shards_failed, 1);
  EXPECT_EQ(report->shards_completed, 2);

  // Shard 2 owns replicas 2 and 5 (unit % 3 == 2); the merged resume must
  // re-run exactly those and nothing the surviving shards completed.
  const int64_t before = ReplicasRun();
  Result<SimulationResult> merged = RunMerged(dir, 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(ReplicasRun() - before, 2);
  ExpectBitIdentical(merged.value());
}

TEST_F(FabricTest, MergeRefusesForeignShardJournal) {
  const std::string dir = FreshDir();
  // A shard journal from a DIFFERENT run (other master seed) in the same
  // directory: the merge pass must refuse it via the manifest matrix, not
  // silently blend two runs.
  ASSERT_TRUE(RunShardInProcess(dir, 0, 2, kSeed + 1).ok());
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = kReplicas;
  config.seed = kSeed;
  config.checkpoint.directory = dir;
  config.checkpoint.resume = true;
  config.checkpoint.sync = false;
  config.checkpoint.merge_shards = 2;
  Result<SimulationResult> merged =
      RunSimulation(*model, FabricTestContext(), lexicon, config);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition)
      << merged.status();
}

// A shard journal truncated mid-record (torn final append, e.g. a worker
// killed inside the write) loses exactly that record: the merge salvages
// the intact prefix and the resume pass re-runs only the lost replica.
TEST_F(FabricTest, TruncatedShardTailSalvagedOnMerge) {
  const std::string dir = FreshDir();
  ASSERT_TRUE(RunShardInProcess(dir, 0, 2).ok());  // owns 0, 2, 4, 6
  ASSERT_TRUE(RunShardInProcess(dir, 1, 2).ok());  // owns 1, 3, 5

  const std::string shard0 = FindShardJournal(dir, 0);
  ASSERT_FALSE(shard0.empty());
  const auto size = std::filesystem::file_size(shard0);
  ASSERT_GT(size, 10u);
  std::filesystem::resize_file(shard0, size - 10);  // tear the last record

  const int64_t before = ReplicasRun();
  Result<SimulationResult> merged = RunMerged(dir, 2);
  ASSERT_TRUE(merged.ok()) << merged.status();
  // Only the torn replica (shard 0's last append) re-ran.
  EXPECT_EQ(ReplicasRun() - before, 1);
  ExpectBitIdentical(merged.value());
}

// The issue's acceptance scenario in one run: four workers, one SIGKILLed
// mid-shard (coordinator failpoint) and one stalled past stall_ms (worker
// failpoint). The fabric recovers both, the retries land in the incident
// ledger, and the merged output is byte-identical to the single-process
// run.
TEST_F(FabricTest, KillAndStallAcrossFourWorkersStaysBitIdentical) {
  const std::string dir = FreshDir();
  FabricOptions options = FastFabric(dir, 4);
  options.stall_ms = 800;
  Failpoints::ArmSpec spec;
  spec.skip = 3;   // a few supervision ticks of clean running first
  spec.fires = 1;  // one SIGKILL, one victim
  Failpoints::Get().Arm("exec.fabric.kill_worker", spec);

  // All four workers linger past the kill tick, so the SIGKILL lands on a
  // live worker (shard 0, first in the scan) while shard 1 later hangs on
  // its own failpoint — two distinct recoveries in one fabric run.
  Result<FabricReport> report = RunWorkerFabric(
      WorkerArgv(dir, 4, {"--stall-shard", "1", "--linger-ms", "400"}),
      options);
  Failpoints::Get().DisarmAll();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->shards_completed, 4);
  EXPECT_FALSE(report->degraded());
  EXPECT_GE(report->total_retries(), 2);
  EXPECT_GE(report->incidents.size(), 2u);

  Result<SimulationResult> merged = RunMerged(dir, 4);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectBitIdentical(merged.value());
}

// Salvage under concurrent writers: two shards journal in parallel while
// an armed ckpt.write.record failpoint tears exactly one append. The
// affected shard's run fails, its journal keeps the durable prefix, and
// the merge + resume re-runs only the replica whose record was lost.
TEST_F(FabricTest, ConcurrentShardWriterTornRecordSalvaged) {
  const std::string dir = FreshDir();
  Failpoints::ArmSpec spec;
  spec.skip = 2;   // let both writers land some records first
  spec.fires = 1;  // exactly one torn append across the two shards
  Failpoints::Get().Arm("ckpt.write.record", spec);

  Result<SimulationResult> results[2] = {
      Status::Internal("shard 0 never ran"),
      Status::Internal("shard 1 never ran")};
  std::thread shard0(
      [&] { results[0] = RunShardInProcess(dir, 0, 2); });
  std::thread shard1(
      [&] { results[1] = RunShardInProcess(dir, 1, 2); });
  shard0.join();
  shard1.join();
  Failpoints::Get().DisarmAll();

  // Exactly one shard hit the injected append failure and failed its run;
  // the other completed.
  const int failures = static_cast<int>(!results[0].ok()) +
                       static_cast<int>(!results[1].ok());
  ASSERT_EQ(failures, 1);

  const int64_t before = ReplicasRun();
  Result<SimulationResult> merged = RunMerged(dir, 2);
  ASSERT_TRUE(merged.ok()) << merged.status();
  // Every replica ran in the concurrent phase; only the one whose record
  // was torn lost its journal entry and re-runs here.
  EXPECT_EQ(ReplicasRun() - before, 1);
  ExpectBitIdentical(merged.value());
}

// ---------------------------------------------------------------------------
// StallEstimator: the adaptive half of the stall detector, pure math.

TEST(StallEstimatorTest, FloorUntilFirstSample) {
  StallEstimator estimator(/*floor_ms=*/800, /*multiplier=*/8.0);
  EXPECT_EQ(estimator.CutoffMs(), 800);
  EXPECT_EQ(estimator.samples(), 0);
  // A workload faster than the floor never drops the cutoff below it:
  // 8 * EMA(10ms) = 80ms < floor.
  estimator.ObserveGrowthGap(10);
  EXPECT_EQ(estimator.CutoffMs(), 800);
}

TEST(StallEstimatorTest, SlowWorkloadRaisesCutoffAboveFloor) {
  StallEstimator estimator(/*floor_ms=*/800, /*multiplier=*/8.0);
  // Units taking ~2s each: the fixed 800ms threshold would kill every
  // healthy worker; the adaptive cutoff rises to 8 * EMA instead.
  estimator.ObserveGrowthGap(2000);
  EXPECT_EQ(estimator.samples(), 1);
  EXPECT_DOUBLE_EQ(estimator.ema_ms(), 2000.0);  // first sample seeds EMA
  EXPECT_EQ(estimator.CutoffMs(), 16000);
}

TEST(StallEstimatorTest, EmaSmoothsWithAlpha) {
  StallEstimator estimator(/*floor_ms=*/100, /*multiplier=*/2.0,
                           /*alpha=*/0.5);
  estimator.ObserveGrowthGap(1000);
  estimator.ObserveGrowthGap(500);
  // EMA = 0.5 * 500 + 0.5 * 1000 = 750; cutoff = 2 * 750.
  EXPECT_DOUBLE_EQ(estimator.ema_ms(), 750.0);
  EXPECT_EQ(estimator.CutoffMs(), 1500);
}

TEST(StallEstimatorTest, DisabledMultiplierPinsFloor) {
  StallEstimator estimator(/*floor_ms=*/800, /*multiplier=*/0);
  estimator.ObserveGrowthGap(60000);
  EXPECT_EQ(estimator.CutoffMs(), 800);  // fixed-threshold behaviour
}

TEST(StallEstimatorTest, NegativeGapsIgnored) {
  StallEstimator estimator(/*floor_ms=*/100, /*multiplier=*/10.0);
  estimator.ObserveGrowthGap(-5);  // clock weirdness must not poison EMA
  EXPECT_EQ(estimator.samples(), 0);
  EXPECT_EQ(estimator.CutoffMs(), 100);
  estimator.ObserveGrowthGap(50);
  EXPECT_EQ(estimator.CutoffMs(), 500);
}

}  // namespace
}  // namespace culevo

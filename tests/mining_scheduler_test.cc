// Tests for the work-stealing mining scheduler: StealDeque ordering, the
// executor's completion/cancellation/exception contracts (including a
// concurrency smoke run that the tsan preset builds with
// -fsanitize=thread), and the Eclat integration — MT output bit-identical
// to ST on a workload large enough to exercise subtree splitting, and
// cancellation mid-steal leaving only well-formed output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/eclat.h"
#include "analysis/mine_scheduler.h"
#include "analysis/transactions.h"
#include "obs/metrics.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace culevo {
namespace {

using mining::SchedulerStats;
using mining::StealDeque;
using mining::WorkStealingScheduler;

// ---------------------------------------------------------------------------
// StealDeque

TEST(StealDequeTest, OwnerPopsLifoThievesStealFifo) {
  StealDeque<int> deque;
  deque.PushBottom(1);
  deque.PushBottom(2);
  deque.PushBottom(3);
  int v = 0;
  ASSERT_TRUE(deque.PopBottom(&v));
  EXPECT_EQ(v, 3);  // Owner side: most recent first.
  ASSERT_TRUE(deque.StealTop(&v));
  EXPECT_EQ(v, 1);  // Thief side: oldest first.
  ASSERT_TRUE(deque.PopBottom(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(deque.PopBottom(&v));
  EXPECT_FALSE(deque.StealTop(&v));
}

TEST(StealDequeTest, SizeTracksPushesAndPops) {
  StealDeque<int> deque;
  EXPECT_EQ(deque.SizeApprox(), 0u);
  deque.PushBottom(7);
  deque.PushBottom(8);
  EXPECT_EQ(deque.SizeApprox(), 2u);
  int v = 0;
  deque.StealTop(&v);
  EXPECT_EQ(deque.SizeApprox(), 1u);
}

// ---------------------------------------------------------------------------
// WorkStealingScheduler

TEST(SchedulerTest, RunsEverySeedExactlyOnce) {
  ThreadPool pool(4);
  WorkStealingScheduler<int> scheduler(&pool);
  EXPECT_GE(scheduler.num_participants(), 2u);
  std::vector<int> seeds(100);
  std::iota(seeds.begin(), seeds.end(), 0);
  // Per-participant buffers: bodies on one participant run sequentially,
  // so plain vectors are race-free by the scheduler's contract (TSan
  // checks this claim in the tsan preset).
  std::vector<std::vector<int>> seen(scheduler.num_participants());
  const SchedulerStats stats = scheduler.Run(
      std::move(seeds),
      [&seen](size_t p, int& task, std::vector<int>*) {
        seen[p].push_back(task);
      },
      nullptr);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.tasks_executed, 100);
  std::set<int> all;
  for (const std::vector<int>& part : seen) all.insert(part.begin(), part.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SchedulerTest, SpawnedTasksRunToTransitiveClosure) {
  // Each task k in [0, 512) spawns 2k+1 and 2k+2 while k < 512: a binary
  // tree of 1023 tasks grown dynamically from one seed.
  ThreadPool pool(4);
  WorkStealingScheduler<int> scheduler(&pool);
  std::atomic<int64_t> sum{0};
  const SchedulerStats stats = scheduler.Run(
      std::vector<int>{0},
      [&sum](size_t, int& task, std::vector<int>* spawned) {
        sum.fetch_add(task, std::memory_order_relaxed);
        if (2 * task + 2 < 1023) {
          spawned->push_back(2 * task + 1);
          spawned->push_back(2 * task + 2);
        }
      },
      nullptr);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.tasks_executed, 1023);
  EXPECT_EQ(sum.load(), 1023 * 1022 / 2);  // sum of 0..1022
}

TEST(SchedulerTest, RunsSerialWithoutPool) {
  WorkStealingScheduler<int> scheduler(nullptr);
  EXPECT_EQ(scheduler.num_participants(), 1u);
  int executed = 0;
  const SchedulerStats stats = scheduler.Run(
      std::vector<int>{1, 2, 3},
      [&executed](size_t p, int&, std::vector<int>*) {
        EXPECT_EQ(p, 0u);
        ++executed;
      },
      nullptr);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(executed, 3);
}

TEST(SchedulerTest, EmptySeedsCompleteImmediately) {
  ThreadPool pool(2);
  WorkStealingScheduler<int> scheduler(&pool);
  const SchedulerStats stats = scheduler.Run(
      std::vector<int>{}, [](size_t, int&, std::vector<int>*) {}, nullptr);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.tasks_executed, 0);
}

TEST(SchedulerTest, CancellationStopsTakingNewTasksWithoutTearing) {
  // The token trips from inside a task body while other subtrees are
  // still queued. Every executed task appends one complete record; the
  // scheduler must return (no hang), report not-completed, and leave only
  // whole records behind.
  ThreadPool pool(4);
  WorkStealingScheduler<int> scheduler(&pool);
  CancelToken cancel;
  std::vector<int> seeds(256);
  std::iota(seeds.begin(), seeds.end(), 0);
  std::vector<std::vector<std::pair<int, int>>> records(
      scheduler.num_participants());
  std::atomic<int> executed{0};
  const SchedulerStats stats = scheduler.Run(
      std::move(seeds),
      [&](size_t p, int& task, std::vector<int>*) {
        records[p].push_back({task, task * 2});
        if (executed.fetch_add(1) == 16) cancel.Cancel();
      },
      &cancel);
  EXPECT_FALSE(stats.completed);
  EXPECT_LT(stats.tasks_executed, 256);
  EXPECT_GE(stats.tasks_executed, 17);  // Everything started finished.
  int64_t total = 0;
  for (const auto& part : records) {
    for (const auto& [task, payload] : part) {
      EXPECT_EQ(payload, task * 2);  // Records are complete, never torn.
    }
    total += static_cast<int64_t>(part.size());
  }
  EXPECT_EQ(total, stats.tasks_executed);
}

TEST(SchedulerTest, PreCancelledTokenRunsNothing) {
  ThreadPool pool(2);
  WorkStealingScheduler<int> scheduler(&pool);
  CancelToken cancel;
  cancel.Cancel();
  const SchedulerStats stats = scheduler.Run(
      std::vector<int>{1, 2, 3},
      [](size_t, int&, std::vector<int>*) { FAIL() << "must not run"; },
      &cancel);
  EXPECT_FALSE(stats.completed);
  EXPECT_EQ(stats.tasks_executed, 0);
}

TEST(SchedulerTest, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  WorkStealingScheduler<int> scheduler(&pool);
  std::vector<int> seeds(64);
  std::iota(seeds.begin(), seeds.end(), 0);
  EXPECT_THROW(
      scheduler.Run(
          std::move(seeds),
          [](size_t, int& task, std::vector<int>*) {
            if (task == 13) throw std::runtime_error("boom");
          },
          nullptr),
      std::runtime_error);
}

TEST(SchedulerTest, ConcurrencySmokeUnderContention) {
  // Many short runs with heavy spawning: the shape most likely to expose
  // a race between PushBottom, StealTop, the pending counter, and the
  // close handshake. Run under the tsan preset for the real verdict.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    WorkStealingScheduler<int> scheduler(&pool);
    std::atomic<int64_t> executed{0};
    const SchedulerStats stats = scheduler.Run(
        std::vector<int>{0, 1, 2, 3},
        [&executed](size_t, int& task, std::vector<int>* spawned) {
          executed.fetch_add(1, std::memory_order_relaxed);
          if (task < 40) {
            spawned->push_back(task + 4);
            spawned->push_back(task + 5);
          }
        },
        nullptr);
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.tasks_executed, executed.load());
  }
}

// ---------------------------------------------------------------------------
// Eclat integration: determinism with splits, cancellation mid-steal

bool SameItemsets(const std::vector<Itemset>& a,
                  const std::vector<Itemset>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].items != b[i].items || a[i].support != b[i].support) {
      return false;
    }
  }
  return true;
}

/// 3000 transactions, 20 draws each from 30 hot items: singleton support
/// ~1480, pair support ~730. At min_support 600 the pairs are frequent
/// and the triples are not. Root-class tid volume (support x remaining
/// siblings, ~1480 x 29 ~ 43k for the earliest roots) clears the split
/// threshold (32k), so the parallel path must split subtrees — asserted
/// via the mine.eclat.splits counter — and each split spawns its frequent
/// children as stealable tasks.
TransactionSet SplitHeavyWorkload() {
  Rng rng(424242);
  TransactionSet transactions;
  transactions.Reserve(3000);
  for (int i = 0; i < 3000; ++i) {
    std::vector<Item> t;
    for (int j = 0; j < 20; ++j) {
      t.push_back(static_cast<Item>(rng.NextBounded(30)));
    }
    std::sort(t.begin(), t.end());
    t.erase(std::unique(t.begin(), t.end()), t.end());
    transactions.Add(std::move(t));
  }
  return transactions;
}

constexpr size_t kSplitHeavySupport = 600;

TEST(EclatWorkStealingTest, SplitSubtreesYieldBitIdenticalOutput) {
  const TransactionSet transactions = SplitHeavyWorkload();
  const std::vector<Itemset> serial =
      MineEclat(transactions, kSplitHeavySupport);
  ASSERT_GT(serial.size(), 30u);  // Pairs must be in play, not singletons only.

  obs::Counter* splits =
      obs::MetricsRegistry::Get().counter("mine.eclat.splits");
  obs::Counter* tasks =
      obs::MetricsRegistry::Get().counter("mine.eclat.subtree_tasks");
  const int64_t splits_before = splits->Value();
  const int64_t tasks_before = tasks->Value();

  ThreadPool pool(4);
  EclatOptions parallel;
  parallel.pool = &pool;
  for (int round = 0; round < 3; ++round) {
    const std::vector<Itemset> mt =
        MineEclat(transactions, kSplitHeavySupport, parallel);
    ASSERT_TRUE(SameItemsets(serial, mt)) << "round " << round;
  }
  EXPECT_GT(splits->Value(), splits_before)
      << "workload failed to exercise subtree splitting";
  // Splitting must create more tasks than the 30 root classes per round.
  EXPECT_GT(tasks->Value() - tasks_before, 3 * 30);
}

TEST(EclatWorkStealingTest, CancellationMidStealLeavesWellFormedSubset) {
  const TransactionSet transactions = SplitHeavyWorkload();
  const std::vector<Itemset> full =
      MineEclat(transactions, kSplitHeavySupport);

  ThreadPool pool(4);
  // Trip the token from a pool thread while mining runs, so cancellation
  // lands between steals with subtrees still queued. The trip task is
  // submitted BEFORE mining (the scheduler's own pool tasks queue behind
  // it) and naps briefly so the trip fires mid-run in the common case;
  // whenever it actually lands, the contract is the same: the result is a
  // subset of the full answer with exact supports — complete subtrees
  // only, nothing torn — and Check() reports kCancelled.
  CancelToken cancel;
  EclatOptions options;
  options.pool = &pool;
  options.cancel = &cancel;
  auto trip = pool.Submit([&cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cancel.Cancel();
  });
  const std::vector<Itemset> partial =
      MineEclat(transactions, kSplitHeavySupport, options);
  trip.get();
  EXPECT_TRUE(CancelToken::Check(&cancel).code() == StatusCode::kCancelled);
  EXPECT_LE(partial.size(), full.size());
  // Every emitted itemset must appear in the full answer with the same
  // support (ItemsetLess order lets us merge-scan).
  size_t j = 0;
  for (const Itemset& set : partial) {
    while (j < full.size() && ItemsetLess(full[j], set)) ++j;
    ASSERT_LT(j, full.size()) << "partial result contains unknown itemset";
    ASSERT_EQ(full[j].items, set.items);
    ASSERT_EQ(full[j].support, set.support);
    ++j;
  }
}

TEST(EclatWorkStealingTest, PreCancelledMiningReturnsEmpty) {
  TransactionSet transactions;
  transactions.Add({0, 1});
  transactions.Add({0, 1});
  CancelToken cancel;
  cancel.Cancel();
  ThreadPool pool(2);
  EclatOptions options;
  options.pool = &pool;
  options.cancel = &cancel;
  EXPECT_TRUE(MineEclat(transactions, 1, options).empty());
}

TEST(EclatWorkStealingTest, NestedMiningFromPoolWorkerDoesNotDeadlock) {
  // MineEclat called from a task running on the SAME pool it is handed:
  // the caller-participates design degrades to caller-only mining instead
  // of deadlocking on pool capacity.
  TransactionSet transactions;
  for (int i = 0; i < 50; ++i) {
    transactions.Add({static_cast<Item>(i % 5),
                      static_cast<Item>(5 + i % 3), 9});
  }
  const std::vector<Itemset> expected = MineEclat(transactions, 2);
  ThreadPool pool(1);
  EclatOptions options;
  options.pool = &pool;
  auto result = pool.Submit([&]() {
    return MineEclat(transactions, 2, options);
  });
  EXPECT_TRUE(SameItemsets(expected, result.get()));
}

}  // namespace
}  // namespace culevo

#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace culevo {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(previous);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel previous = GetLogLevel();
  // Suppress output while exercising the streaming path.
  SetLogLevel(LogLevel::kError);
  CULEVO_LOG(Info) << "value=" << 42 << " text=" << std::string("x");
  CULEVO_LOG(Debug) << "below threshold";
  SetLogLevel(previous);
}

TEST(LoggingTest, ErrorAlwaysAboveDefaultThreshold) {
  EXPECT_GE(static_cast<int>(LogLevel::kError),
            static_cast<int>(GetLogLevel()));
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 50);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace culevo

#include "core/copy_mutate.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace culevo {
namespace {

/// A lexicon with `categories` categories of `per_category` ingredients
/// each; ids are assigned in category-major order.
Lexicon GridLexicon(int categories, int per_category) {
  Lexicon lexicon;
  for (int c = 0; c < categories; ++c) {
    for (int i = 0; i < per_category; ++i) {
      EXPECT_TRUE(lexicon
                      .Add("ing_" + std::to_string(c) + "_" +
                               std::to_string(i),
                           CategoryFromIndex(c))
                      .ok());
    }
  }
  return lexicon;
}

CuisineContext GridContext(const Lexicon& lexicon, size_t target,
                           int mean_size) {
  CuisineContext context;
  context.cuisine = 0;
  context.ingredients = lexicon.AllIds();
  context.popularity.assign(context.ingredients.size(), 0.5);
  context.mean_recipe_size = mean_size;
  context.target_recipes = target;
  context.phi = static_cast<double>(context.ingredients.size()) /
                static_cast<double>(target);
  return context;
}

TEST(CopyMutateTest, GeneratesTargetCountOfValidRecipes) {
  const Lexicon lexicon = GridLexicon(4, 25);
  const CuisineContext context = GridContext(lexicon, 400, 8);
  GeneratedRecipes recipes;
  ASSERT_TRUE(MakeCmR(&lexicon)->Generate(context, 1, &recipes).ok());
  ASSERT_EQ(recipes.size(), 400u);
  for (const std::vector<IngredientId>& recipe : recipes) {
    EXPECT_EQ(recipe.size(), 8u);  // Constant s̄ without insert/delete.
    EXPECT_TRUE(std::is_sorted(recipe.begin(), recipe.end()));
    std::set<IngredientId> unique(recipe.begin(), recipe.end());
    EXPECT_EQ(unique.size(), recipe.size());
    for (IngredientId id : recipe) {
      EXPECT_LT(id, lexicon.size());  // Only cuisine ingredients.
    }
  }
}

TEST(CopyMutateTest, DeterministicPerSeed) {
  const Lexicon lexicon = GridLexicon(3, 30);
  const CuisineContext context = GridContext(lexicon, 200, 7);
  const auto model = MakeCmM(&lexicon);
  GeneratedRecipes a;
  GeneratedRecipes b;
  ASSERT_TRUE(model->Generate(context, 42, &a).ok());
  ASSERT_TRUE(model->Generate(context, 42, &b).ok());
  EXPECT_EQ(a, b);
  GeneratedRecipes c;
  ASSERT_TRUE(model->Generate(context, 43, &c).ok());
  EXPECT_NE(a, c);
}

TEST(CopyMutateTest, PaperFactoriesUsePaperParameters) {
  const Lexicon lexicon = GridLexicon(2, 10);
  EXPECT_EQ(MakeCmR(&lexicon)->params().mutations, 4);
  EXPECT_EQ(MakeCmC(&lexicon)->params().mutations, 6);
  EXPECT_EQ(MakeCmM(&lexicon)->params().mutations, 6);
  EXPECT_EQ(MakeCmR(&lexicon)->params().initial_pool, 20);
  EXPECT_DOUBLE_EQ(MakeCmM(&lexicon)->params().mixture_cross_prob, 0.5);
  EXPECT_EQ(MakeCmR(&lexicon)->name(), "CM-R");
  EXPECT_EQ(MakeCmC(&lexicon)->name(), "CM-C");
  EXPECT_EQ(MakeCmM(&lexicon)->name(), "CM-M");
}

TEST(CopyMutateTest, InvalidContextsRejected) {
  const Lexicon lexicon = GridLexicon(2, 10);
  const auto model = MakeCmR(&lexicon);
  GeneratedRecipes out;

  CuisineContext empty_target = GridContext(lexicon, 10, 5);
  empty_target.target_recipes = 0;
  EXPECT_FALSE(model->Generate(empty_target, 1, &out).ok());

  CuisineContext no_ingredients = GridContext(lexicon, 10, 5);
  no_ingredients.ingredients.clear();
  EXPECT_FALSE(model->Generate(no_ingredients, 1, &out).ok());

  CuisineContext bad_phi = GridContext(lexicon, 10, 5);
  bad_phi.phi = 0.0;
  EXPECT_FALSE(model->Generate(bad_phi, 1, &out).ok());
}

/// CM-C preserves every recipe's per-category ingredient counts along its
/// lineage (same-category point mutations), so the number of *distinct
/// category histograms* in the evolved pool stays near the initial pool's;
/// CM-R crosses categories freely and produces many more.
TEST(CopyMutateTest, SameCategoryPolicyPreservesCategoryHistograms) {
  const Lexicon lexicon = GridLexicon(4, 25);
  const CuisineContext context = GridContext(lexicon, 400, 8);

  const auto count_histograms = [&](const GeneratedRecipes& recipes) {
    std::set<std::vector<int>> histograms;
    for (const std::vector<IngredientId>& recipe : recipes) {
      std::vector<int> histogram(4, 0);
      for (IngredientId id : recipe) {
        ++histogram[static_cast<int>(lexicon.category(id))];
      }
      histograms.insert(histogram);
    }
    return histograms.size();
  };

  GeneratedRecipes cm_c;
  ASSERT_TRUE(MakeCmC(&lexicon)->Generate(context, 5, &cm_c).ok());
  GeneratedRecipes cm_r;
  ASSERT_TRUE(MakeCmR(&lexicon)->Generate(context, 5, &cm_r).ok());

  // n0 = m/phi = 20 / (100/400) = 80 initial recipes bound CM-C's
  // distinct-histogram count; CM-R keeps generating new histograms.
  EXPECT_LE(count_histograms(cm_c), 80u + 4u);  // +slack for pool fallback.
  EXPECT_GT(count_histograms(cm_r), count_histograms(cm_c));
}

TEST(CopyMutateTest, MixtureProbabilityInterpolates) {
  const Lexicon lexicon = GridLexicon(4, 25);
  const CuisineContext context = GridContext(lexicon, 400, 8);

  const auto distinct_histograms = [&](double cross_prob) {
    ModelParams params;
    params.policy = ReplacementPolicy::kMixture;
    params.mutations = 6;
    params.mixture_cross_prob = cross_prob;
    const CopyMutateModel model(&lexicon, params);
    GeneratedRecipes recipes;
    EXPECT_TRUE(model.Generate(context, 5, &recipes).ok());
    std::set<std::vector<int>> histograms;
    for (const std::vector<IngredientId>& recipe : recipes) {
      std::vector<int> histogram(4, 0);
      for (IngredientId id : recipe) {
        ++histogram[static_cast<int>(lexicon.category(id))];
      }
      histograms.insert(histogram);
    }
    return histograms.size();
  };

  const size_t at_zero = distinct_histograms(0.0);
  const size_t at_one = distinct_histograms(1.0);
  EXPECT_LT(at_zero, at_one);
}

TEST(CopyMutateTest, VariableSizeExtensionChangesSizes) {
  const Lexicon lexicon = GridLexicon(4, 25);
  const CuisineContext context = GridContext(lexicon, 500, 8);
  ModelParams params;
  params.insert_prob = 0.3;
  params.delete_prob = 0.3;
  const CopyMutateModel model(&lexicon, params);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 3, &recipes).ok());
  std::set<size_t> sizes;
  for (const std::vector<IngredientId>& recipe : recipes) {
    sizes.insert(recipe.size());
    EXPECT_GE(recipe.size(), 2u);
    EXPECT_LE(recipe.size(), 38u);
  }
  EXPECT_GT(sizes.size(), 1u);
}

TEST(CopyMutateTest, FitnessGatingEnrichesHighFitnessIngredients) {
  // Under uniform fitness, mutation only replaces lower-fitness ingredients
  // with higher-fitness ones, so late recipes should be enriched in the
  // top-fitness half relative to the initial pool average.
  const Lexicon lexicon = GridLexicon(1, 100);
  const CuisineContext context = GridContext(lexicon, 2000, 8);
  ModelParams params;
  params.mutations = 8;
  const CopyMutateModel model(&lexicon, params);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 11, &recipes).ok());

  // Proxy: ingredient usage concentration. Fitness-gated evolution reuses
  // the fittest ingredients, so the most common ingredient should appear in
  // far more than the uniform share of recipes.
  std::map<IngredientId, size_t> counts;
  for (const auto& recipe : recipes) {
    for (IngredientId id : recipe) ++counts[id];
  }
  size_t max_count = 0;
  for (const auto& [id, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Uniform share would be 2000 * 8 / 100 = 160; gating concentrates usage.
  EXPECT_GT(max_count, 480u);
}

TEST(CopyMutateTest, SmallIngredientListsStillWork) {
  // |I| smaller than the initial pool request.
  const Lexicon lexicon = GridLexicon(1, 12);
  const CuisineContext context = GridContext(lexicon, 60, 5);
  GeneratedRecipes recipes;
  ASSERT_TRUE(MakeCmR(&lexicon)->Generate(context, 2, &recipes).ok());
  EXPECT_EQ(recipes.size(), 60u);
}

TEST(ReplacementPolicyNameTest, Names) {
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kRandom), "CM-R");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kSameCategory),
               "CM-C");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kMixture), "CM-M");
}

}  // namespace
}  // namespace culevo

#include "analysis/cooccurrence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace culevo {
namespace {

RecipeCorpus PairingCorpus() {
  RecipeCorpus::Builder builder;
  // Ingredients 1 and 2 always together (4/4); ingredient 3 independent.
  EXPECT_TRUE(builder.Add(0, {1, 2}).ok());
  EXPECT_TRUE(builder.Add(0, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(0, {1, 2}).ok());
  EXPECT_TRUE(builder.Add(0, {3, 4}).ok());
  return builder.Build();
}

TEST(PairingNetworkTest, CountsAndPmi) {
  const std::vector<PairingEdge> edges =
      BuildPairingNetwork(PairingCorpus(), 0, 1);
  // Pairs: (1,2):3, (1,3):1, (2,3):1, (3,4):1.
  ASSERT_EQ(edges.size(), 4u);

  const PairingEdge* pair_12 = nullptr;
  for (const PairingEdge& edge : edges) {
    EXPECT_LT(edge.a, edge.b);  // Canonical orientation.
    if (edge.a == 1 && edge.b == 2) pair_12 = &edge;
  }
  ASSERT_NE(pair_12, nullptr);
  EXPECT_EQ(pair_12->cooccurrences, 3u);
  // p(1,2)=3/4, p(1)=3/4, p(2)=3/4 -> PMI = log2((3/4)/(9/16)) = log2(4/3).
  EXPECT_NEAR(pair_12->pmi, std::log2(4.0 / 3.0), 1e-12);
}

TEST(PairingNetworkTest, MinCooccurrenceFilters) {
  const std::vector<PairingEdge> edges =
      BuildPairingNetwork(PairingCorpus(), 0, 2);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].a, 1);
  EXPECT_EQ(edges[0].b, 2);
}

TEST(PairingNetworkTest, SortedByPmiDescending) {
  const std::vector<PairingEdge> edges =
      BuildPairingNetwork(PairingCorpus(), 0, 1);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].pmi, edges[i].pmi);
  }
  // (3,4): p=1/4, p(3)=2/4, p(4)=1/4 -> PMI = log2((1/4)/(1/8)) = 1: top.
  EXPECT_EQ(edges[0].a, 3);
  EXPECT_EQ(edges[0].b, 4);
}

TEST(PairingNetworkTest, EmptyCuisine) {
  EXPECT_TRUE(BuildPairingNetwork(PairingCorpus(), 7, 1).empty());
}

TEST(TopPartnersTest, ReturnsStrongestPartnersOfIngredient) {
  const std::vector<PairingPartner> partners =
      TopPartners(PairingCorpus(), 0, 3, 2, 1);
  // Ingredient 3 pairs with 1, 2, 4; top 2 by PMI: 4 first (PMI 1).
  ASSERT_EQ(partners.size(), 2u);
  EXPECT_EQ(partners[0].partner, 4);
  EXPECT_EQ(partners[0].cooccurrences, 1u);
}

TEST(TopPartnersTest, UnknownIngredientHasNoPartners) {
  EXPECT_TRUE(TopPartners(PairingCorpus(), 0, 99, 3, 1).empty());
}

}  // namespace
}  // namespace culevo

// Failure-injection tests: fatal invariant checks must abort loudly rather
// than corrupt state silently.

#include "util/check.h"

#include <gtest/gtest.h>

#include "lexicon/lexicon.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace culevo {
namespace {

TEST(CheckDeathTest, CheckFailsOnFalseCondition) {
  EXPECT_DEATH({ CULEVO_CHECK(1 + 1 == 3); }, "CHECK failed");
}

TEST(CheckDeathTest, CheckOkFailsOnErrorStatus) {
  EXPECT_DEATH({ CULEVO_CHECK_OK(Status::NotFound("gone")); },
               "CHECK_OK failed");
}

TEST(CheckDeathTest, CheckPassesSilently) {
  CULEVO_CHECK(true);
  CULEVO_CHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, SampleWithoutReplacementRejectsOversizedK) {
  Rng rng(1);
  EXPECT_DEATH({ SampleWithoutReplacement(&rng, 3, 4); }, "CHECK failed");
}

TEST(CheckDeathTest, DiscreteSamplerRejectsEmptyWeights) {
  EXPECT_DEATH({ DiscreteSampler sampler((std::vector<double>())); },
               "CHECK failed");
}

TEST(CheckDeathTest, DiscreteSamplerRejectsZeroMass) {
  EXPECT_DEATH({ DiscreteSampler sampler(std::vector<double>{0.0, 0.0}); },
               "CHECK failed");
}

TEST(CheckDeathTest, LexiconEntryRejectsBadId) {
  Lexicon lexicon;
  EXPECT_DEATH({ (void)lexicon.entry(5); }, "CHECK failed");
}

}  // namespace
}  // namespace culevo

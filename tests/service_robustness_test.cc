// Protocol and parser robustness: hostile bytes on the wire (truncated,
// oversize, zero-length, garbage frames), malformed request tokens, and
// fd-table exhaustion on the accept path. Every case must map to the
// documented error taxonomy — never a crash, hang, or silent wrong
// answer. Runs under the asan-ubsan preset, where "no crash" means no
// UB either.

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/service_core.h"
#include "lexicon/world_lexicon.h"
#include "util/strings.h"

namespace culevo {
namespace {

constexpr CuisineId kA = 0;

std::string Code(CuisineId c) { return std::string(CuisineAt(c).code); }

RecipeCorpus TinyCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(kA, {2, 4}).ok());
  return builder.Build();
}

/// A connected AF_UNIX stream pair: writes on `a` are reads on `b`.
struct SocketPair {
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void CloseA() {
    ::close(fd[0]);
    fd[0] = -1;
  }
  int a() const { return fd[0]; }
  int b() const { return fd[1]; }
  int fd[2] = {-1, -1};
};

void WriteRaw(int fd, const void* data, size_t size) {
  ASSERT_EQ(::write(fd, data, size), static_cast<ssize_t>(size));
}

// --- ReadFrame taxonomy: every way a frame can be hostile -------------------

TEST(FrameTaxonomyTest, OversizeLengthPrefixIsRefusedBeforeAllocation) {
  SocketPair pair;
  const uint32_t huge = kMaxFrameBytes + 1;
  uint8_t prefix[4] = {static_cast<uint8_t>(huge & 0xFF),
                       static_cast<uint8_t>((huge >> 8) & 0xFF),
                       static_cast<uint8_t>((huge >> 16) & 0xFF),
                       static_cast<uint8_t>((huge >> 24) & 0xFF)};
  WriteRaw(pair.a(), prefix, sizeof(prefix));
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameTaxonomyTest, GarbageAllOnesPrefixIsInvalidArgument) {
  SocketPair pair;
  const uint8_t prefix[4] = {0xFF, 0xFF, 0xFF, 0xFF};  // ~4 GiB claim
  WriteRaw(pair.a(), prefix, sizeof(prefix));
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameTaxonomyTest, MidFrameEofIsDataLoss) {
  SocketPair pair;
  const uint8_t prefix[4] = {10, 0, 0, 0};  // claims 10 payload bytes
  WriteRaw(pair.a(), prefix, sizeof(prefix));
  WriteRaw(pair.a(), "abc", 3);  // ...delivers 3, then hangs up
  pair.CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload).code(), StatusCode::kDataLoss);
}

TEST(FrameTaxonomyTest, TruncatedLengthPrefixIsDataLoss) {
  SocketPair pair;
  const uint8_t partial[2] = {10, 0};  // half a length prefix
  WriteRaw(pair.a(), partial, sizeof(partial));
  pair.CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload).code(), StatusCode::kDataLoss);
}

TEST(FrameTaxonomyTest, CleanEofIsNotFound) {
  SocketPair pair;
  pair.CloseA();
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload).code(), StatusCode::kNotFound);
}

TEST(FrameTaxonomyTest, MidFrameStallIsDeadlineExceeded) {
  SocketPair pair;
  const uint8_t prefix[4] = {16, 0, 0, 0};
  WriteRaw(pair.a(), prefix, sizeof(prefix));  // frame never completes
  std::string payload;
  EXPECT_EQ(ReadFrame(pair.b(), &payload, /*timeout_ms=*/100).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(FrameTaxonomyTest, ZeroLengthFrameRoundTrips) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a(), "").ok());
  std::string payload = "sentinel";
  ASSERT_TRUE(ReadFrame(pair.b(), &payload).ok());
  EXPECT_TRUE(payload.empty());
}

TEST(FrameTaxonomyTest, WriteRefusesOversizePayload) {
  SocketPair pair;
  const std::string oversize(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(WriteFrame(pair.a(), oversize).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameTaxonomyTest, MaxSizePayloadRoundTrips) {
  SocketPair pair;
  const std::string big(kMaxFrameBytes, 'y');
  // Full-duplex pair: a reader thread drains while the writer fills, so
  // the 1 MiB frame cannot deadlock on the socket buffer.
  std::string payload;
  Status read = Status::Internal("never read");
  std::thread reader(
      [&] { read = ReadFrame(pair.b(), &payload, /*timeout_ms=*/10000); });
  EXPECT_TRUE(WriteFrame(pair.a(), big).ok());
  reader.join();
  ASSERT_TRUE(read.ok()) << read;
  EXPECT_EQ(payload, big);
}

// --- Request-grammar taxonomy: hostile payloads through Handle --------------

class RequestTaxonomyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core_ = std::make_unique<ServiceCore>(&WorldLexicon(), ServiceOptions{});
    ASSERT_TRUE(core_->InstallCorpus(TinyCorpus(), "<test>").ok());
  }
  std::string Handle(const std::string& request) {
    return core_->Handle(request);
  }
  std::unique_ptr<ServiceCore> core_;
};

TEST_F(RequestTaxonomyTest, MalformedDeadlineTokens) {
  // Non-numeric, empty, trailing junk, and overflowing deadline values
  // are all InvalidArgument — never treated as "no deadline".
  for (const std::string bad :
       {"abc", "", "12x", "99999999999999999999", "1.5", "+-3"}) {
    const std::string response = Handle("ping deadline_ms=" + bad);
    EXPECT_TRUE(StartsWith(response, "error InvalidArgument"))
        << "deadline_ms=" << bad << " -> " << response;
  }
}

TEST_F(RequestTaxonomyTest, MalformedIngredientIdTokens) {
  EXPECT_TRUE(StartsWith(Handle("freq " + Code(kA) + " #"),
                         "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(Handle("freq " + Code(kA) + " #x1"),
                         "error InvalidArgument"));
  // Well-formed but out-of-lexicon: NotFound, distinct from a parse error.
  EXPECT_TRUE(StartsWith(Handle("freq " + Code(kA) + " #999999"),
                         "error NotFound"));
}

TEST_F(RequestTaxonomyTest, UnknownOptionsAndCommands) {
  EXPECT_TRUE(StartsWith(Handle("ping frobnicate=1"),
                         "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(Handle("selfdestruct"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(Handle(""), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(Handle("   "), "error InvalidArgument"));
}

TEST_F(RequestTaxonomyTest, GarbageBytesNeverCrash) {
  // Binary noise, embedded NULs, control characters, pathological
  // lengths: each must come back as a well-formed error frame.
  std::vector<std::string> payloads = {
      std::string("\xFF\xFE\x00\x01\x7F", 5),
      std::string(1000, '\0'),
      std::string("overrep \x01\x02\x03"),
      std::string("search ") + std::string(5000, ','),
      std::string(100000, 'A'),
      "simulate\t\n\r\v ",
      "recipe -9223372036854775808",
  };
  for (const std::string& payload : payloads) {
    const std::string response = Handle(payload);
    EXPECT_TRUE(StartsWith(response, "error "))
        << "payload of " << payload.size() << " bytes -> " << response;
  }
}

// --- fd exhaustion on the accept path ---------------------------------------

// EMFILE on accept() is load, not a bug: the server must count it, back
// off, and resume serving the moment descriptors free up — not spin, not
// die, not leak the pending connection.
TEST(AcceptExhaustionTest, EmfileBacksOffAndRecovers) {
  const std::string socket_path = testing::TempDir() + "culevo_emfile_" +
                                  std::to_string(::getpid()) + ".sock";
  ServiceCore core(&WorldLexicon(), ServiceOptions{});
  ASSERT_TRUE(core.InstallCorpus(TinyCorpus(), "<test>").ok());
  ServerOptions options;
  options.socket_path = socket_path;
  options.threads = 2;
  SocketServer server(&core, options);
  ASSERT_TRUE(server.Start().ok());

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  ASSERT_LT(socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  const auto connect_client = [&addr]() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  };

  // Sanity round trip before the storm. The control connection stays OPEN
  // through the exhaustion phase: closing it here would make the server
  // release its side asynchronously, freeing an fd slot at an unpredictable
  // moment and letting accept() succeed instead of hitting EMFILE.
  int control = connect_client();
  ASSERT_GE(control, 0);
  ASSERT_TRUE(WriteFrame(control, "ping").ok());
  std::string response;
  ASSERT_TRUE(ReadFrame(control, &response, 10000).ok());
  ASSERT_EQ(response, "ok 1\npong\n");

  // Lower the soft fd limit so exhaustion is cheap, then occupy every
  // remaining slot — keeping ONE in reserve for the client socket.
  struct rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit lowered = saved;
  lowered.rlim_cur = 64;
  if (lowered.rlim_cur > saved.rlim_max) lowered.rlim_cur = saved.rlim_max;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(0);
    if (fd < 0) {
      EXPECT_EQ(errno, EMFILE);
      break;
    }
    hogs.push_back(fd);
    ASSERT_LT(hogs.size(), 100000u) << "fd table never filled";
  }
  if (hogs.empty()) {
    ::setrlimit(RLIMIT_NOFILE, &saved);
    ::close(control);
    server.Stop();
    ::unlink(socket_path.c_str());
    GTEST_SKIP() << "fd table already exhausted before the test could arm";
  }

  // Free exactly one slot for the client's socket; the kernel queues the
  // connection in the listen backlog, but the server's accept() now has
  // no descriptor to return: EMFILE.
  ::close(hogs.back());
  hogs.pop_back();
  const int pending = connect_client();
  ASSERT_GE(pending, 0);

  obs::Counter* accept_errors =
      obs::MetricsRegistry::Get().counter("serve.accept_errors");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const int64_t baseline_wait = accept_errors->Value();
  while (accept_errors->Value() == baseline_wait &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(accept_errors->Value(), baseline_wait)
      << "accept never hit EMFILE";

  // Storm over: release the hogs; the queued connection must now be
  // accepted and served — the backoff loop kept retrying, not bailing.
  for (const int fd : hogs) ::close(fd);
  hogs.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  ASSERT_TRUE(WriteFrame(pending, "ping").ok());
  const Status read = ReadFrame(pending, &response, 15000);
  EXPECT_TRUE(read.ok()) << read;
  EXPECT_EQ(response, "ok 1\npong\n");
  ::close(pending);
  ::close(control);

  server.Stop();
  ::unlink(socket_path.c_str());
}

}  // namespace
}  // namespace culevo

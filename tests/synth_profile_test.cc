#include "synth/cuisine_profile.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "lexicon/world_lexicon.h"

namespace culevo {
namespace {

class CuisineProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(CuisineProfileTest, StructurallySound) {
  const CuisineId cuisine = static_cast<CuisineId>(GetParam());
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile profile = BuildCuisineProfile(lexicon, cuisine, 7);
  const CuisineInfo& info = CuisineAt(cuisine);

  // Vocabulary has the Table-I unique-ingredient count, no duplicates.
  EXPECT_EQ(profile.vocabulary.size(),
            static_cast<size_t>(info.paper_ingredients));
  std::set<IngredientId> unique(profile.vocabulary.begin(),
                                profile.vocabulary.end());
  EXPECT_EQ(unique.size(), profile.vocabulary.size());

  // The Table-I top-5 occupy the head, in order.
  for (size_t i = 0; i < info.top_ingredients.size(); ++i) {
    EXPECT_EQ(lexicon.name(profile.vocabulary[i]), info.top_ingredients[i]);
  }

  // Preferences: one weight per vocabulary entry, normalized, decreasing
  // beyond the boosted head.
  ASSERT_EQ(profile.preference.size(), profile.vocabulary.size());
  EXPECT_NEAR(std::accumulate(profile.preference.begin(),
                              profile.preference.end(), 0.0),
              1.0, 1e-9);
  for (size_t i = 6; i < profile.preference.size(); ++i) {
    EXPECT_LE(profile.preference[i], profile.preference[i - 1]);
  }
  EXPECT_GT(profile.preference[0], profile.preference[5]);

  // Calibration passthrough.
  EXPECT_DOUBLE_EQ(profile.liberty, info.liberty);
  EXPECT_DOUBLE_EQ(profile.mean_recipe_size, info.mean_recipe_size);
  EXPECT_EQ(profile.min_recipe_size, 2);
  EXPECT_EQ(profile.max_recipe_size, 38);
}

INSTANTIATE_TEST_SUITE_P(AllCuisines, CuisineProfileTest,
                         ::testing::Range(0, kNumCuisines));

TEST(CuisineProfileDeterminismTest, SameSeedSameProfile) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile a = BuildCuisineProfile(lexicon, 3, 99);
  const CuisineProfile b = BuildCuisineProfile(lexicon, 3, 99);
  EXPECT_EQ(a.vocabulary, b.vocabulary);
  EXPECT_EQ(a.preference, b.preference);
}

TEST(CuisineProfileDeterminismTest, DifferentSeedsDifferInTail) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile a = BuildCuisineProfile(lexicon, 3, 1);
  const CuisineProfile b = BuildCuisineProfile(lexicon, 3, 2);
  EXPECT_NE(a.vocabulary, b.vocabulary);
  // Head (top-5) is fixed regardless of seed.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.vocabulary[i], b.vocabulary[i]);
  }
}

TEST(CuisineProfileDeterminismTest, DifferentCuisinesDiffer) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile a = BuildCuisineProfile(lexicon, 0, 7);
  const CuisineProfile b = BuildCuisineProfile(lexicon, 1, 7);
  EXPECT_NE(a.vocabulary, b.vocabulary);
}

}  // namespace
}  // namespace culevo

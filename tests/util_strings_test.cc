#include "util/strings.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitAndTrimTest, DropsEmptyAndTrims) {
  EXPECT_EQ(SplitAndTrim("  a ; ;b ;", ';'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // Non-overlapping.
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // Empty pattern no-op.
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(ParseInt64Test, AcceptsWholeStrings) {
  long long v = 0;
  EXPECT_TRUE(ParseInt64("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("  -5 ", &v));
  EXPECT_EQ(v, -5);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
}

TEST(ParseDoubleTest, AcceptsWholeStrings) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

}  // namespace
}  // namespace culevo

#include "core/simulation.h"

#include <gtest/gtest.h>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "lexicon/world_lexicon.h"
#include "synth/generator.h"

namespace culevo {
namespace {

CuisineContext SmallContext() {
  CuisineContext context;
  context.cuisine = 0;
  const Lexicon& lexicon = WorldLexicon();
  for (IngredientId id = 0; id < 120; ++id) {
    context.ingredients.push_back(id);
  }
  context.popularity.assign(120, 0.5);
  context.mean_recipe_size = 7;
  context.target_recipes = 240;
  context.phi = 0.5;
  (void)lexicon;
  return context;
}

TEST(RecipesToTransactionsTest, PreservesRecipes) {
  GeneratedRecipes recipes = {{1, 2, 3}, {2, 5}};
  const TransactionSet transactions = RecipesToTransactions(recipes);
  ASSERT_EQ(transactions.size(), 2u);
  EXPECT_EQ(transactions.transaction(0), (std::vector<Item>{1, 2, 3}));
  EXPECT_EQ(transactions.transaction(1), (std::vector<Item>{2, 5}));
}

TEST(RecipesToCategoryTransactionsTest, ProjectsViaLexicon) {
  const Lexicon& lexicon = WorldLexicon();
  const IngredientId basil = *lexicon.Find("Basil");    // Herb.
  const IngredientId mint = *lexicon.Find("Mint");      // Herb.
  const IngredientId salt = *lexicon.Find("Salt");      // Additive.
  GeneratedRecipes recipes = {{basil, mint, salt}};
  const TransactionSet transactions =
      RecipesToCategoryTransactions(recipes, lexicon);
  ASSERT_EQ(transactions.size(), 1u);
  EXPECT_EQ(transactions.transaction(0).size(), 2u);  // Herb + Additive.
}

TEST(RunSimulationTest, AggregatesReplicas) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  SimulationConfig config;
  config.replicas = 4;
  config.seed = 9;
  Result<SimulationResult> result =
      RunSimulation(model, SmallContext(), lexicon, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->replica_ingredient_curves.size(), 4u);
  EXPECT_FALSE(result->ingredient_curve.empty());
  EXPECT_FALSE(result->category_curve.empty());
}

TEST(RunSimulationTest, DeterministicAcrossRuns) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = 3;
  config.seed = 5;
  Result<SimulationResult> a =
      RunSimulation(*model, SmallContext(), lexicon, config);
  Result<SimulationResult> b =
      RunSimulation(*model, SmallContext(), lexicon, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ingredient_curve.values(), b->ingredient_curve.values());
}

TEST(RunSimulationTest, ParallelEqualsSerial) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmM(&lexicon);
  SimulationConfig config;
  config.replicas = 6;
  config.seed = 11;
  Result<SimulationResult> serial =
      RunSimulation(*model, SmallContext(), lexicon, config, nullptr);
  ThreadPool pool(4);
  Result<SimulationResult> parallel =
      RunSimulation(*model, SmallContext(), lexicon, config, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->ingredient_curve.values(),
            parallel->ingredient_curve.values());
  EXPECT_EQ(serial->category_curve.values(),
            parallel->category_curve.values());
}

TEST(RunSimulationTest, ReplicasDiffer) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = 2;
  Result<SimulationResult> result =
      RunSimulation(*model, SmallContext(), lexicon, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->replica_ingredient_curves[0].values(),
            result->replica_ingredient_curves[1].values());
}

TEST(RunSimulationTest, InvalidConfigRejected) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  SimulationConfig config;
  config.replicas = 0;
  EXPECT_FALSE(
      RunSimulation(model, SmallContext(), lexicon, config).ok());
}

TEST(RunSimulationTest, PropagatesModelErrors) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  CuisineContext bad = SmallContext();
  bad.phi = 0.0;
  SimulationConfig config;
  config.replicas = 2;
  EXPECT_FALSE(RunSimulation(model, bad, lexicon, config).ok());
}

}  // namespace
}  // namespace culevo

// Parameterized property tests: invariants that must hold for every
// culinary-evolution model configuration (policy × fitness hypothesis ×
// mutation count), swept with TEST_P.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "lexicon/world_lexicon.h"

namespace culevo {
namespace {

CuisineContext WorldContext(size_t num_ingredients, size_t target,
                            int mean_size) {
  CuisineContext context;
  context.cuisine = 0;
  for (size_t i = 0; i < num_ingredients; ++i) {
    context.ingredients.push_back(static_cast<IngredientId>(i));
  }
  context.popularity.assign(num_ingredients, 0.5);
  context.mean_recipe_size = mean_size;
  context.target_recipes = target;
  context.phi = static_cast<double>(num_ingredients) /
                static_cast<double>(target);
  return context;
}

using ModelParamTuple = std::tuple<ReplacementPolicy, FitnessKind, int>;

class CopyMutatePropertyTest
    : public ::testing::TestWithParam<ModelParamTuple> {};

TEST_P(CopyMutatePropertyTest, GeneratedPoolSatisfiesAllInvariants) {
  const auto [policy, fitness, mutations] = GetParam();
  ModelParams params;
  params.policy = policy;
  params.fitness = fitness;
  params.mutations = mutations;
  const CopyMutateModel model(&WorldLexicon(), params);

  const CuisineContext context = WorldContext(150, 450, 8);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 97, &recipes).ok());

  // Invariant 1: exactly N recipes.
  ASSERT_EQ(recipes.size(), context.target_recipes);

  std::set<IngredientId> used;
  for (const std::vector<IngredientId>& recipe : recipes) {
    // Invariant 2: constant size s̄ (no insert/delete configured).
    EXPECT_EQ(recipe.size(), 8u);
    // Invariant 3: sorted unique ingredient sets.
    EXPECT_TRUE(std::is_sorted(recipe.begin(), recipe.end()));
    EXPECT_EQ(std::adjacent_find(recipe.begin(), recipe.end()),
              recipe.end());
    // Invariant 4: only cuisine ingredients.
    for (IngredientId id : recipe) {
      EXPECT_LT(id, 150);
      used.insert(id);
    }
  }

  // Invariant 5: pool growth happened — with phi = 1/3 and m0 = 20, the
  // evolved corpus must draw on far more than the initial pool.
  EXPECT_GT(used.size(), 40u);

  // Invariant 6: determinism.
  GeneratedRecipes again;
  ASSERT_TRUE(model.Generate(context, 97, &again).ok());
  EXPECT_EQ(recipes, again);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, CopyMutatePropertyTest,
    ::testing::Combine(
        ::testing::Values(ReplacementPolicy::kRandom,
                          ReplacementPolicy::kSameCategory,
                          ReplacementPolicy::kMixture),
        ::testing::Values(FitnessKind::kUniform,
                          FitnessKind::kCategoryBiased,
                          FitnessKind::kPopularityRank),
        ::testing::Values(1, 4, 6)));

class VariableSizePropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(VariableSizePropertyTest, SizesStayInPaperEnvelope) {
  const auto [insert_prob, delete_prob] = GetParam();
  ModelParams params;
  params.policy = ReplacementPolicy::kMixture;
  params.insert_prob = insert_prob;
  params.delete_prob = delete_prob;
  const CopyMutateModel model(&WorldLexicon(), params);
  const CuisineContext context = WorldContext(120, 400, 9);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 31, &recipes).ok());
  for (const std::vector<IngredientId>& recipe : recipes) {
    EXPECT_GE(recipe.size(), 2u);
    EXPECT_LE(recipe.size(), 38u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, VariableSizePropertyTest,
    ::testing::Values(std::make_tuple(0.0, 0.0), std::make_tuple(0.5, 0.0),
                      std::make_tuple(0.0, 0.5), std::make_tuple(0.5, 0.5),
                      std::make_tuple(1.0, 1.0)));

class NullModelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NullModelPropertyTest, ValidForVaryingPoolSizes) {
  const NullModel model(GetParam());
  const CuisineContext context = WorldContext(100, 250, 7);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 13, &recipes).ok());
  ASSERT_EQ(recipes.size(), 250u);
  for (const std::vector<IngredientId>& recipe : recipes) {
    EXPECT_LE(recipe.size(), 7u);
    EXPECT_TRUE(std::is_sorted(recipe.begin(), recipe.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, NullModelPropertyTest,
                         ::testing::Values(1, 5, 20, 100, 500));

}  // namespace
}  // namespace culevo

#include "core/recipe_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "lexicon/world_lexicon.h"
#include "synth/generator.h"
#include "util/check.h"

namespace culevo {
namespace {

const RecipeCorpus& GenCorpus() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    const Lexicon& lexicon = WorldLexicon();
    const CuisineId ita = CuisineFromCode("ITA").value();
    const CuisineProfile profile = BuildCuisineProfile(lexicon, ita, 7);
    SynthConfig config;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(
        SynthesizeCuisine(lexicon, profile, config, 700, &builder));
    return *new RecipeCorpus(builder.Build());
  }();
  return corpus;
}

CuisineId Ita() { return CuisineFromCode("ITA").value(); }

TEST(RecipeGeneratorTest, GeneratesValidRecipeOfTargetSize) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 1);
  ASSERT_TRUE(generator.ok());

  GenerationConstraints constraints;
  constraints.target_size = 8;
  Result<NovelRecipe> recipe = generator->Generate(constraints);
  ASSERT_TRUE(recipe.ok());
  EXPECT_EQ(recipe->ingredients.size(), 8u);
  EXPECT_TRUE(std::is_sorted(recipe->ingredients.begin(),
                             recipe->ingredients.end()));
  std::set<IngredientId> unique(recipe->ingredients.begin(),
                                recipe->ingredients.end());
  EXPECT_EQ(unique.size(), recipe->ingredients.size());
  EXPECT_GE(recipe->novelty, 0.0);
  EXPECT_LE(recipe->novelty, 1.0);
}

TEST(RecipeGeneratorTest, MustIncludeIsHonored) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 2);
  ASSERT_TRUE(generator.ok());
  const IngredientId tofu = *WorldLexicon().Find("Tofu");

  GenerationConstraints constraints;
  constraints.must_include = {tofu};
  for (int round = 0; round < 10; ++round) {
    Result<NovelRecipe> recipe = generator->Generate(constraints);
    ASSERT_TRUE(recipe.ok());
    EXPECT_TRUE(std::binary_search(recipe->ingredients.begin(),
                                   recipe->ingredients.end(), tofu));
  }
}

TEST(RecipeGeneratorTest, ExclusionsAreHonored) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 3);
  ASSERT_TRUE(generator.ok());
  const Lexicon& lexicon = WorldLexicon();
  const IngredientId garlic = *lexicon.Find("Garlic");

  GenerationConstraints constraints;
  constraints.must_exclude = {garlic};
  // A vegetarian-style dietary intervention: no meat, fish or seafood.
  constraints.excluded_categories = {Category::kMeat, Category::kFish,
                                     Category::kSeafood};
  for (int round = 0; round < 10; ++round) {
    Result<NovelRecipe> recipe = generator->Generate(constraints);
    ASSERT_TRUE(recipe.ok());
    for (IngredientId id : recipe->ingredients) {
      EXPECT_NE(id, garlic);
      EXPECT_NE(lexicon.category(id), Category::kMeat);
      EXPECT_NE(lexicon.category(id), Category::kFish);
      EXPECT_NE(lexicon.category(id), Category::kSeafood);
    }
  }
}

TEST(RecipeGeneratorTest, ContradictoryConstraintsRejected) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 4);
  ASSERT_TRUE(generator.ok());
  const IngredientId basil = *WorldLexicon().Find("Basil");

  GenerationConstraints constraints;
  constraints.must_include = {basil};
  constraints.must_exclude = {basil};
  EXPECT_FALSE(generator->Generate(constraints).ok());
}

TEST(RecipeGeneratorTest, OversizedMustIncludeRejected) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 5);
  ASSERT_TRUE(generator.ok());
  GenerationConstraints constraints;
  constraints.target_size = 2;
  constraints.must_include = {0, 1, 2};
  EXPECT_FALSE(generator->Generate(constraints).ok());
}

TEST(RecipeGeneratorTest, BatchSortedByTypicality) {
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 6);
  ASSERT_TRUE(generator.ok());
  Result<std::vector<NovelRecipe>> batch =
      generator->GenerateBatch(GenerationConstraints{}, 8);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 8u);
  for (size_t i = 1; i < batch->size(); ++i) {
    EXPECT_GE((*batch)[i - 1].typicality, (*batch)[i].typicality);
  }
  EXPECT_FALSE(generator->GenerateBatch(GenerationConstraints{}, 0).ok());
}

TEST(RecipeGeneratorTest, NoveltyIsPositiveForMutatedRecipes) {
  // With mutations and constraint repair the proposals should rarely be
  // verbatim corpus recipes.
  Result<RecipeGenerator> generator =
      RecipeGenerator::Create(&GenCorpus(), Ita(), &WorldLexicon(), 7);
  ASSERT_TRUE(generator.ok());
  GenerationConstraints constraints;
  constraints.mutations = 6;
  double total_novelty = 0.0;
  for (int round = 0; round < 10; ++round) {
    Result<NovelRecipe> recipe = generator->Generate(constraints);
    ASSERT_TRUE(recipe.ok());
    total_novelty += recipe->novelty;
  }
  EXPECT_GT(total_novelty / 10.0, 0.05);
}

TEST(RecipeGeneratorTest, CreateValidation) {
  EXPECT_FALSE(
      RecipeGenerator::Create(nullptr, Ita(), &WorldLexicon(), 1).ok());
  EXPECT_FALSE(
      RecipeGenerator::Create(&GenCorpus(), Ita(), nullptr, 1).ok());
  // Empty cuisine.
  const CuisineId kor = CuisineFromCode("KOR").value();
  EXPECT_FALSE(
      RecipeGenerator::Create(&GenCorpus(), kor, &WorldLexicon(), 1).ok());
}

}  // namespace
}  // namespace culevo

#include "util/json.h"

#include <gtest/gtest.h>

#include <limits>

namespace culevo {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("ITA");
  w.Key("mae");
  w.Number(0.25);
  w.Key("count");
  w.Int(42);
  w.Key("ok");
  w.Bool(true);
  w.Key("missing");
  w.Null();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"name\":\"ITA\",\"mae\":0.25,\"count\":42,\"ok\":true,"
            "\"missing\":null}");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("curve");
  w.BeginArray();
  w.Number(1);
  w.Number(0.5);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"curve\":[1,0.5],\"nested\":{\"a\":1}}");
}

TEST(JsonWriterTest, ArrayOfObjects) {
  JsonWriter w;
  w.BeginArray();
  w.BeginObject();
  w.Key("x");
  w.Int(1);
  w.EndObject();
  w.BeginObject();
  w.Key("x");
  w.Int(2);
  w.EndObject();
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[{\"x\":1},{\"x\":2}]");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginArray();
  w.String("a\"b\\c\nd\te");
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[\"a\\\"b\\\\c\\nd\\te\"]");
}

TEST(JsonWriterTest, EscapeControlCharacters) {
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(std::move(w).Take(), "[null,null]");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_array");
  w.BeginArray();
  w.EndArray();
  w.Key("empty_object");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(std::move(w).Take(),
            "{\"empty_array\":[],\"empty_object\":{}}");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter w;
  w.Number(3.5);
  EXPECT_EQ(std::move(w).Take(), "3.5");
}

}  // namespace
}  // namespace culevo

#include "util/flags.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  FlagParser parser;
  EXPECT_TRUE(
      parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags = Parse({"--scale=0.5", "--name=x"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "x");
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags = Parse({"--replicas", "7"});
  EXPECT_EQ(flags.GetInt("replicas", 0), 7);
}

TEST(FlagParserTest, BareBooleanForm) {
  FlagParser flags = Parse({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("other"));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = Parse({"input.tsv", "--x=1", "output.tsv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.tsv", "output.tsv"}));
}

TEST(FlagParserTest, DuplicateFlagRejected) {
  const char* argv[] = {"bin", "--a=1", "--a=2"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(3, argv).ok());
}

TEST(FlagParserTest, MalformedValueFallsBackToDefault) {
  FlagParser flags = Parse({"--n=abc", "--d=xyz"});
  EXPECT_EQ(flags.GetInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("d", 2.5), 2.5);
}

TEST(FlagParserTest, BoolSpellings) {
  FlagParser flags =
      Parse({"--a=true", "--b=0", "--c=YES", "--d=off", "--e=maybe"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // Unparseable -> default.
}

TEST(FlagParserTest, MissingFlagUsesDefault) {
  FlagParser flags = Parse({});
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(flags.GetInt("missing", -3), -3);
}

}  // namespace
}  // namespace culevo

#include "util/distributions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.h"

namespace culevo {
namespace {

TEST(StandardNormalTest, MeanZeroVarianceOne) {
  Rng rng(1);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = SampleStandardNormal(&rng);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(TruncatedNormalTest, RespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const int v = SampleTruncatedNormalInt(&rng, 9.0, 3.0, 2, 38);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 38);
  }
}

TEST(TruncatedNormalTest, MeanNearRequested) {
  Rng rng(3);
  double total = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total += SampleTruncatedNormalInt(&rng, 9.0, 3.0, 2, 38);
  }
  EXPECT_NEAR(total / n, 9.0, 0.15);
}

TEST(TruncatedNormalTest, DegenerateIntervalReturnsBound) {
  Rng rng(4);
  EXPECT_EQ(SampleTruncatedNormalInt(&rng, 100.0, 1.0, 5, 5), 5);
}

TEST(TruncatedNormalTest, FarMeanClampsGracefully) {
  Rng rng(5);
  const int v = SampleTruncatedNormalInt(&rng, 1000.0, 0.001, 2, 38);
  EXPECT_GE(v, 2);
  EXPECT_LE(v, 38);
}

TEST(ZipfWeightsTest, NormalizedAndDecreasing) {
  const std::vector<double> w = ZipfWeights(100, 1.0);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-9);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(ZipfWeightsTest, ShiftFlattensHead) {
  const std::vector<double> plain = ZipfWeights(50, 1.0, 0.0);
  const std::vector<double> shifted = ZipfWeights(50, 1.0, 5.0);
  EXPECT_GT(plain[0] / plain[1], shifted[0] / shifted[1]);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  DiscreteSampler sampler(weights);
  Rng rng(6);
  std::vector<int> counts(weights.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  const double total = 10.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, weights[i] / total,
                0.01);
  }
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({1.0, 0.0, 1.0});
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(sampler.Sample(&rng), 1u);
}

TEST(DiscreteSamplerTest, SingleElement) {
  DiscreteSampler sampler({5.0});
  Rng rng(8);
  EXPECT_EQ(sampler.Sample(&rng), 0u);
}

struct SwrParam {
  uint32_t n;
  uint32_t k;
};

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<SwrParam> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  const SwrParam p = GetParam();
  Rng rng(p.n * 31 + p.k);
  for (int round = 0; round < 50; ++round) {
    const std::vector<uint32_t> sample =
        SampleWithoutReplacement(&rng, p.n, p.k);
    EXPECT_EQ(sample.size(), p.k);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), p.k);
    for (uint32_t v : sample) EXPECT_LT(v, p.n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleWithoutReplacementTest,
    ::testing::Values(SwrParam{1, 1}, SwrParam{5, 5}, SwrParam{10, 3},
                      SwrParam{100, 1}, SwrParam{100, 99}, SwrParam{721, 20},
                      SwrParam{1000, 500}));

TEST(SampleWithoutReplacementTest, CoversAllElements) {
  Rng rng(9);
  std::set<uint32_t> seen;
  for (int round = 0; round < 200; ++round) {
    for (uint32_t v : SampleWithoutReplacement(&rng, 10, 3)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SampleWithoutReplacementTest, IntoMatchesAllocatingVariant) {
  SampleScratch scratch;
  std::vector<uint32_t> buf;
  for (const SwrParam p :
       {SwrParam{1, 1}, SwrParam{10, 3}, SwrParam{721, 20},
        SwrParam{1000, 500}}) {
    Rng a(p.n * 17 + p.k);
    Rng b(p.n * 17 + p.k);
    const std::vector<uint32_t> allocating =
        SampleWithoutReplacement(&a, p.n, p.k);
    buf.clear();
    SampleWithoutReplacementInto(&b, p.n, p.k, &scratch, &buf);
    EXPECT_EQ(allocating, buf) << "n=" << p.n << " k=" << p.k;
  }
}

TEST(SampleWithoutReplacementTest, ScratchStaysZeroAcrossCalls) {
  SampleScratch scratch;
  std::vector<uint32_t> buf;
  Rng rng(12);
  for (int round = 0; round < 50; ++round) {
    buf.clear();
    SampleWithoutReplacementInto(&rng, 100, 10, &scratch, &buf);
  }
  // If any bit leaked, a full draw of the range would miss some value.
  buf.clear();
  SampleWithoutReplacementInto(&rng, 100, 100, &scratch, &buf);
  std::set<uint32_t> unique(buf.begin(), buf.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(WeightedSampleWithoutReplacementTest, DistinctRespectsZeroWeights) {
  Rng rng(10);
  const std::vector<double> weights = {0.0, 1.0, 2.0, 0.0, 3.0};
  for (int round = 0; round < 100; ++round) {
    const std::vector<uint32_t> sample =
        WeightedSampleWithoutReplacement(&rng, weights, 3).value();
    EXPECT_EQ(sample.size(), 3u);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 3u);
    EXPECT_EQ(unique.count(0), 0u);
    EXPECT_EQ(unique.count(3), 0u);
  }
}

TEST(WeightedSampleWithoutReplacementTest, HigherWeightPickedFirstMoreOften) {
  Rng rng(11);
  const std::vector<double> weights = {1.0, 10.0};
  int heavy_first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (WeightedSampleWithoutReplacement(&rng, weights, 1).value()[0] == 1) {
      ++heavy_first;
    }
  }
  EXPECT_NEAR(static_cast<double>(heavy_first) / n, 10.0 / 11.0, 0.02);
}

// Regression: the seed implementation CHECK-crashed when k exceeded the
// number of positive weights; it must report InvalidArgument instead.
TEST(WeightedSampleWithoutReplacementTest, TooManyDrawsIsInvalidArgument) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  const auto result = WeightedSampleWithoutReplacement(&rng, weights, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WeightedSampleWithoutReplacementTest, NegativeWeightIsInvalidArgument) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, -0.5, 2.0};
  const auto result = WeightedSampleWithoutReplacement(&rng, weights, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WeightedSampleWithoutReplacementTest, ExactlyAllPositiveWeights) {
  Rng rng(15);
  const std::vector<double> weights = {0.0, 0.25, 4.0, 0.0, 1e-12};
  const std::vector<uint32_t> sample =
      WeightedSampleWithoutReplacement(&rng, weights, 3).value();
  const std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique, (std::set<uint32_t>{1, 2, 4}));
}

}  // namespace
}  // namespace culevo

#include "synth/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/overrepresentation.h"
#include "analysis/summary.h"
#include "corpus/corpus_stats.h"
#include "lexicon/world_lexicon.h"

namespace culevo {
namespace {

RecipeCorpus OneCuisine(CuisineId cuisine, int count, uint64_t seed = 7) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile profile =
      BuildCuisineProfile(lexicon, cuisine, seed);
  SynthConfig config;
  config.seed = seed;
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(
      SynthesizeCuisine(lexicon, profile, config, count, &builder).ok());
  return builder.Build();
}

TEST(SynthesizeCuisineTest, ProducesRequestedCount) {
  const RecipeCorpus corpus = OneCuisine(2, 500);
  EXPECT_EQ(corpus.num_recipes(), 500u);
  EXPECT_EQ(corpus.num_recipes_in(2), 500u);
}

TEST(SynthesizeCuisineTest, SizesWithinPaperBounds) {
  const RecipeCorpus corpus = OneCuisine(4, 800);
  for (uint32_t i = 0; i < corpus.num_recipes(); ++i) {
    const size_t size = corpus.ingredients_of(i).size();
    EXPECT_GE(size, 2u);
    EXPECT_LE(size, 38u);
  }
}

TEST(SynthesizeCuisineTest, MeanSizeNearCalibration) {
  const CuisineId cuisine = 11;  // ITA, mean 9.2.
  const RecipeCorpus corpus = OneCuisine(cuisine, 3000);
  EXPECT_NEAR(corpus.MeanRecipeSize(cuisine),
              CuisineAt(cuisine).mean_recipe_size, 0.5);
}

TEST(SynthesizeCuisineTest, SizeDistributionIsGaussianLike) {
  const RecipeCorpus corpus = OneCuisine(21, 4000);  // USA.
  const std::vector<CuisineStats> stats = ComputeCuisineStats(corpus);
  const GaussianFit fit = FitGaussianToHistogram(stats[21].size_histogram);
  EXPECT_LT(fit.tv_error, 0.15);
}

TEST(SynthesizeCuisineTest, DeterministicForSeed) {
  const RecipeCorpus a = OneCuisine(5, 300, 42);
  const RecipeCorpus b = OneCuisine(5, 300, 42);
  ASSERT_EQ(a.num_recipes(), b.num_recipes());
  for (uint32_t i = 0; i < a.num_recipes(); ++i) {
    EXPECT_EQ(std::vector<IngredientId>(a.ingredients_of(i).begin(),
                                        a.ingredients_of(i).end()),
              std::vector<IngredientId>(b.ingredients_of(i).begin(),
                                        b.ingredients_of(i).end()));
  }
}

TEST(SynthesizeCuisineTest, SeedsChangeOutput) {
  const RecipeCorpus a = OneCuisine(5, 300, 1);
  const RecipeCorpus b = OneCuisine(5, 300, 2);
  bool any_different = false;
  for (uint32_t i = 0; i < a.num_recipes() && !any_different; ++i) {
    any_different =
        std::vector<IngredientId>(a.ingredients_of(i).begin(),
                                  a.ingredients_of(i).end()) !=
        std::vector<IngredientId>(b.ingredients_of(i).begin(),
                                  b.ingredients_of(i).end());
  }
  EXPECT_TRUE(any_different);
}

TEST(SynthesizeCuisineTest, RejectsBadCount) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineProfile profile = BuildCuisineProfile(lexicon, 0, 7);
  RecipeCorpus::Builder builder;
  EXPECT_FALSE(
      SynthesizeCuisine(lexicon, profile, SynthConfig{}, 0, &builder).ok());
}

TEST(SynthesizeCuisineTest, TopFiveIngredientsDominate) {
  const CuisineId cuisine = 10;  // INSC.
  const RecipeCorpus corpus = OneCuisine(cuisine, 2500);
  const Lexicon& lexicon = WorldLexicon();
  // Each calibrated top ingredient appears in a sizable recipe fraction.
  for (std::string_view name : CuisineAt(cuisine).top_ingredients) {
    const IngredientId id = *lexicon.Find(name);
    size_t hits = 0;
    for (uint32_t r : corpus.recipes_of(cuisine)) {
      for (IngredientId ing : corpus.ingredients_of(r)) {
        if (ing == id) {
          ++hits;
          break;
        }
      }
    }
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(corpus.num_recipes_in(cuisine)),
              0.15)
        << name;
  }
}

TEST(SynthesizeWorldCorpusTest, ScaleValidation) {
  const Lexicon& lexicon = WorldLexicon();
  SynthConfig config;
  config.scale = 0.0;
  EXPECT_FALSE(SynthesizeWorldCorpus(lexicon, config).ok());
  config.scale = 1.5;
  EXPECT_FALSE(SynthesizeWorldCorpus(lexicon, config).ok());
}

TEST(SynthesizeWorldCorpusTest, AllCuisinesPopulatedWithFloor) {
  const Lexicon& lexicon = WorldLexicon();
  SynthConfig config;
  config.scale = 0.001;  // Tiny: every cuisine floors at 30 recipes.
  Result<RecipeCorpus> corpus = SynthesizeWorldCorpus(lexicon, config);
  ASSERT_TRUE(corpus.ok());
  for (int c = 0; c < kNumCuisines; ++c) {
    EXPECT_GE(corpus->num_recipes_in(static_cast<CuisineId>(c)), 30u);
  }
}

TEST(SynthesizeWorldCorpusTest, ScaledCountsTrackTableOne) {
  const Lexicon& lexicon = WorldLexicon();
  SynthConfig config;
  config.scale = 0.02;
  Result<RecipeCorpus> corpus = SynthesizeWorldCorpus(lexicon, config);
  ASSERT_TRUE(corpus.ok());
  const CuisineId ita = CuisineFromCode("ITA").value();
  EXPECT_NEAR(static_cast<double>(corpus->num_recipes_in(ita)),
              23179 * 0.02, 2.0);
}

TEST(SynthesizeWorldCorpusTest, OverrepresentationRecoversCalibration) {
  const Lexicon& lexicon = WorldLexicon();
  SynthConfig config;
  config.scale = 0.05;
  Result<RecipeCorpus> corpus = SynthesizeWorldCorpus(lexicon, config);
  ASSERT_TRUE(corpus.ok());

  const CuisineId ita = CuisineFromCode("ITA").value();
  const auto top = TopOverrepresented(*corpus, ita, 5);
  std::set<std::string> computed;
  for (const OverrepresentationScore& s : top) {
    computed.insert(lexicon.name(s.ingredient));
  }
  int hits = 0;
  for (std::string_view name : CuisineAt(ita).top_ingredients) {
    if (computed.count(std::string(name)) != 0) ++hits;
  }
  EXPECT_GE(hits, 3) << "Table-I calibration should mostly be recovered";
}

}  // namespace
}  // namespace culevo

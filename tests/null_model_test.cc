#include "core/null_model.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace culevo {
namespace {

CuisineContext MakeContext(size_t num_ingredients, size_t target,
                           int mean_size) {
  CuisineContext context;
  context.cuisine = 0;
  for (size_t i = 0; i < num_ingredients; ++i) {
    context.ingredients.push_back(static_cast<IngredientId>(i));
  }
  context.popularity.assign(num_ingredients, 0.5);
  context.mean_recipe_size = mean_size;
  context.target_recipes = target;
  context.phi = static_cast<double>(num_ingredients) /
                static_cast<double>(target);
  return context;
}

TEST(NullModelTest, GeneratesTargetCount) {
  const NullModel model;
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(MakeContext(100, 300, 6), 1, &recipes).ok());
  EXPECT_EQ(recipes.size(), 300u);
}

TEST(NullModelTest, RecipesAreValidSets) {
  const NullModel model;
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(MakeContext(80, 200, 7), 2, &recipes).ok());
  for (const std::vector<IngredientId>& recipe : recipes) {
    EXPECT_EQ(recipe.size(), 7u);
    EXPECT_TRUE(std::is_sorted(recipe.begin(), recipe.end()));
    std::set<IngredientId> unique(recipe.begin(), recipe.end());
    EXPECT_EQ(unique.size(), recipe.size());
    for (IngredientId id : recipe) EXPECT_LT(id, 80);
  }
}

TEST(NullModelTest, Deterministic) {
  const NullModel model;
  const CuisineContext context = MakeContext(60, 150, 5);
  GeneratedRecipes a;
  GeneratedRecipes b;
  ASSERT_TRUE(model.Generate(context, 7, &a).ok());
  ASSERT_TRUE(model.Generate(context, 7, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(NullModelTest, NoDuplicationPressure) {
  // Without copying, exact duplicate recipes should be rare for a large
  // pool (unlike copy-mutate, which duplicates by construction when M
  // mutations all fail the fitness gate).
  const NullModel model;
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(MakeContext(200, 500, 8), 3, &recipes).ok());
  std::set<std::vector<IngredientId>> unique(recipes.begin(), recipes.end());
  EXPECT_GT(unique.size(), recipes.size() * 9 / 10);
}

TEST(NullModelTest, EarlyPoolMembersAreOverused) {
  // The growing-pool dynamic means the initial 20 pool ingredients appear
  // in far more recipes than late arrivals — the source of the null
  // model's abrupt rank-frequency collapse.
  const NullModel model(20);
  const CuisineContext context = MakeContext(200, 1000, 8);
  GeneratedRecipes recipes;
  ASSERT_TRUE(model.Generate(context, 4, &recipes).ok());
  std::map<IngredientId, size_t> counts;
  for (const auto& recipe : recipes) {
    for (IngredientId id : recipe) ++counts[id];
  }
  size_t max_count = 0;
  size_t min_count = recipes.size();
  for (const auto& [id, count] : counts) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 4 * std::max<size_t>(min_count, 1));
}

TEST(NullModelTest, InvalidContextsRejected) {
  const NullModel model;
  GeneratedRecipes out;
  CuisineContext context = MakeContext(10, 20, 4);
  context.target_recipes = 0;
  EXPECT_FALSE(model.Generate(context, 1, &out).ok());
  context = MakeContext(10, 20, 4);
  context.ingredients.clear();
  EXPECT_FALSE(model.Generate(context, 1, &out).ok());
  context = MakeContext(10, 20, 4);
  context.phi = -1.0;
  EXPECT_FALSE(model.Generate(context, 1, &out).ok());
}

TEST(NullModelTest, NameIsNM) {
  EXPECT_EQ(NullModel().name(), "NM");
}

}  // namespace
}  // namespace culevo

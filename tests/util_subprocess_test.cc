#include "util/subprocess.h"

#include <csignal>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

namespace culevo {
namespace {

std::vector<std::string> Sh(const std::string& script) {
  return {"/bin/sh", "-c", script};
}

TEST(SubprocessTest, CleanExitIsOkStatus) {
  Subprocess child;
  ASSERT_TRUE(child.Spawn(Sh("exit 0")).ok());
  const ExitState state = child.Wait();
  EXPECT_TRUE(state.exited);
  EXPECT_EQ(state.code, 0);
  EXPECT_TRUE(state.ToStatus("child").ok());
  EXPECT_FALSE(child.running());
}

TEST(SubprocessTest, NonzeroExitSurfacesCode) {
  Subprocess child;
  ASSERT_TRUE(child.Spawn(Sh("exit 7")).ok());
  const ExitState state = child.Wait();
  EXPECT_TRUE(state.exited);
  EXPECT_EQ(state.code, 7);
  const Status status = state.ToStatus("worker");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("7"), std::string::npos);
}

TEST(SubprocessTest, SignalDeathSurfacesSignal) {
  Subprocess child;
  ASSERT_TRUE(child.Spawn(Sh("kill -9 $$")).ok());
  const ExitState state = child.Wait();
  EXPECT_TRUE(state.signaled);
  EXPECT_EQ(state.signal, SIGKILL);
  EXPECT_FALSE(state.ToStatus("worker").ok());
}

TEST(SubprocessTest, ExecFailureIsExit127) {
  Subprocess child;
  ASSERT_TRUE(
      child.Spawn({"/nonexistent/binary/for/this/test"}).ok());
  const ExitState state = child.Wait();
  EXPECT_TRUE(state.exited);
  EXPECT_EQ(state.code, 127);
}

TEST(SubprocessTest, EmptyArgvRefused) {
  Subprocess child;
  EXPECT_EQ(child.Spawn({}).code(), StatusCode::kInvalidArgument);
}

TEST(SubprocessTest, TryWaitIsNonBlockingAndIdempotent) {
  Subprocess child;
  ASSERT_TRUE(child.Spawn(Sh("sleep 30")).ok());
  ExitState state;
  EXPECT_FALSE(child.TryWait(&state));  // still running, returns at once
  EXPECT_TRUE(child.running());
  child.Kill();
  // The final state is cached: every TryWait after the reap agrees.
  ASSERT_TRUE(child.TryWait(&state));
  EXPECT_TRUE(state.signaled);
  EXPECT_EQ(state.signal, SIGKILL);
  ExitState again;
  ASSERT_TRUE(child.TryWait(&again));
  EXPECT_EQ(again.signal, SIGKILL);
}

TEST(SubprocessTest, TerminateEscalatesToSigkill) {
  Subprocess child;
  // A child that ignores SIGTERM forces the escalation path. The trap
  // keeps the shell from exec-replacing itself, so SIGKILLing it orphans
  // the inner sleep — silenced output detaches that orphan from our
  // stdout pipe, or ctest would wait the full 30 s for it to exit.
  SpawnOptions options;
  options.silence_stdout = true;
  options.silence_stderr = true;
  ASSERT_TRUE(child.Spawn(Sh("trap '' TERM; sleep 30"), options).ok());
  // Give the shell a moment to install the trap; without it the SIGTERM
  // may land first and the test would pass vacuously.
  ::usleep(200 * 1000);
  const ExitState state = child.Terminate(100);
  EXPECT_TRUE(state.signaled);
  EXPECT_EQ(state.signal, SIGKILL);
}

TEST(SubprocessTest, ExtraEnvReachesChild) {
  Subprocess child;
  SpawnOptions options;
  options.extra_env = {"CULEVO_SUBPROCESS_TEST_TOKEN=42"};
  ASSERT_TRUE(
      child.Spawn(Sh("test \"$CULEVO_SUBPROCESS_TEST_TOKEN\" = 42"), options)
          .ok());
  const ExitState state = child.Wait();
  EXPECT_TRUE(state.exited);
  EXPECT_EQ(state.code, 0);
}

TEST(SubprocessTest, DestructorKillsLeakedChild) {
  int64_t pid = -1;
  {
    Subprocess child;
    ASSERT_TRUE(child.Spawn(Sh("sleep 30")).ok());
    pid = child.pid();
    ASSERT_GT(pid, 0);
  }
  // The destructor SIGKILLed and reaped the child, so the pid no longer
  // names a process we may signal.
  EXPECT_NE(::kill(static_cast<pid_t>(pid), 0), 0);
}

TEST(SubprocessTest, MoveTransfersOwnership) {
  Subprocess a;
  ASSERT_TRUE(a.Spawn(Sh("sleep 30")).ok());
  const int64_t pid = a.pid();
  Subprocess b = std::move(a);
  EXPECT_FALSE(a.running());
  EXPECT_TRUE(b.running());
  EXPECT_EQ(b.pid(), pid);
  const ExitState state = b.Kill();
  EXPECT_TRUE(state.signaled);
}

}  // namespace
}  // namespace culevo

// fabric_worker: the worker binary the exec-fabric tests dispatch.
//
// Runs the shared FabricTestContext simulation (CM-R) as one shard of a
// fabric run — the same role culevo_cli plays in production, but always
// built (the sanitizer presets compile with examples off) and with
// scripted failure modes for the supervision tests:
//
//   --fail-shard <s>         shard s exits 3 on its first attempt only
//                            (transient crash; the re-dispatch succeeds)
//   --fail-shard-always <s>  shard s exits 3 on every attempt
//                            (permanent failure; exhausts the retry budget)
//   --stall-shard <s>        shard s hangs after one replica on its first
//                            attempt (arms the exec.worker.stall
//                            failpoint; the coordinator's stall detector
//                            must SIGKILL and re-dispatch it)
//   --linger-ms <n>          sleep n ms before the run. The context is
//                            small enough that workers can finish inside
//                            a couple of supervision ticks; lingering
//                            keeps them alive long enough for the
//                            coordinator-side kill tests to hit a live
//                            process deterministically.
//
// The attempt number arrives via CULEVO_WORKER_ATTEMPT, exported by the
// fabric per spawn, so "first attempt only" needs no on-disk state.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "core/copy_mutate.h"
#include "core/simulation.h"
#include "fabric_test_context.h"
#include "lexicon/world_lexicon.h"
#include "util/failpoint.h"
#include "util/flags.h"

namespace {

using namespace culevo;

int Run(int argc, char** argv) {
  FlagParser flags;
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s << "\n";
    return 2;
  }
  const int shard = static_cast<int>(flags.GetInt("worker-shard", 0));
  const int workers = static_cast<int>(flags.GetInt("workers", 1));
  const char* attempt_env = std::getenv("CULEVO_WORKER_ATTEMPT");
  const int attempt = attempt_env != nullptr ? std::atoi(attempt_env) : 0;

  if (shard == flags.GetInt("fail-shard-always", -1)) return 3;
  if (attempt == 0) {
    if (shard == flags.GetInt("fail-shard", -1)) return 3;
    if (shard == flags.GetInt("stall-shard", -1)) {
      Failpoints::ArmSpec spec;
      spec.skip = 1;  // one replica lands in the journal, then the hang
      Failpoints::Get().Arm("exec.worker.stall", spec);
    }
  }

  const int64_t linger_ms = flags.GetInt("linger-ms", 0);
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }

  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  SimulationConfig config;
  config.replicas = static_cast<int>(flags.GetInt("replicas", 7));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 77));
  config.checkpoint.directory = flags.GetString("checkpoint", "");
  config.checkpoint.resume = true;
  config.checkpoint.sync = false;
  config.shard.index = shard;
  config.shard.count = workers;
  Result<SimulationResult> result =
      RunSimulation(*model, FabricTestContext(), lexicon, config);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }

#include "core/horizontal.h"

#include <gtest/gtest.h>

#include <set>

#include "lexicon/world_lexicon.h"

namespace culevo {
namespace {

/// Two cuisines with disjoint ingredient ranges so cross-cuisine leakage
/// is directly observable.
std::vector<CuisineContext> DisjointContexts() {
  std::vector<CuisineContext> contexts(2);
  for (int k = 0; k < 2; ++k) {
    CuisineContext& context = contexts[static_cast<size_t>(k)];
    context.cuisine = static_cast<CuisineId>(k);
    for (int i = 0; i < 80; ++i) {
      context.ingredients.push_back(static_cast<IngredientId>(k * 80 + i));
    }
    context.popularity.assign(80, 0.5);
    context.mean_recipe_size = 6;
    context.target_recipes = 200;
    context.phi = 80.0 / 200.0;
  }
  return contexts;
}

bool AnyForeignIngredient(const GeneratedRecipes& recipes,
                          IngredientId lo, IngredientId hi) {
  for (const auto& recipe : recipes) {
    for (IngredientId id : recipe) {
      if (id < lo || id >= hi) return true;
    }
  }
  return false;
}

TEST(HorizontalTest, ZeroMigrationKeepsCuisinesIsolated) {
  HorizontalConfig config;
  config.migration_prob = 0.0;
  config.seed = 3;
  Result<HorizontalWorld> world =
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config);
  ASSERT_TRUE(world.ok());
  ASSERT_EQ(world->recipes.size(), 2u);
  EXPECT_EQ(world->recipes[0].size(), 200u);
  EXPECT_EQ(world->recipes[1].size(), 200u);
  EXPECT_FALSE(AnyForeignIngredient(world->recipes[0], 0, 80));
  EXPECT_FALSE(AnyForeignIngredient(world->recipes[1], 80, 160));
}

TEST(HorizontalTest, MigrationLeaksForeignIngredients) {
  HorizontalConfig config;
  config.migration_prob = 0.5;
  config.seed = 3;
  Result<HorizontalWorld> world =
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config);
  ASSERT_TRUE(world.ok());
  // With heavy migration, imported mother recipes carry the donor's
  // ingredients into the other cuisine's pool output.
  EXPECT_TRUE(AnyForeignIngredient(world->recipes[0], 0, 80) ||
              AnyForeignIngredient(world->recipes[1], 80, 160));
}

TEST(HorizontalTest, RecipesAreSortedSets) {
  HorizontalConfig config;
  config.migration_prob = 0.1;
  Result<HorizontalWorld> world =
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config);
  ASSERT_TRUE(world.ok());
  for (const GeneratedRecipes& recipes : world->recipes) {
    for (const std::vector<IngredientId>& recipe : recipes) {
      EXPECT_TRUE(std::is_sorted(recipe.begin(), recipe.end()));
      std::set<IngredientId> unique(recipe.begin(), recipe.end());
      EXPECT_EQ(unique.size(), recipe.size());
    }
  }
}

TEST(HorizontalTest, Deterministic) {
  HorizontalConfig config;
  config.migration_prob = 0.2;
  config.seed = 5;
  Result<HorizontalWorld> a =
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config);
  Result<HorizontalWorld> b =
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->recipes, b->recipes);
}

TEST(HorizontalTest, SingleCuisineWorks) {
  std::vector<CuisineContext> contexts = {DisjointContexts()[0]};
  HorizontalConfig config;
  config.migration_prob = 0.5;  // No donors available; stays local.
  Result<HorizontalWorld> world =
      EvolveHorizontalWorld(contexts, WorldLexicon(), config);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->recipes[0].size(), 200u);
}

TEST(HorizontalTest, InvalidInputsRejected) {
  HorizontalConfig config;
  EXPECT_FALSE(EvolveHorizontalWorld({}, WorldLexicon(), config).ok());

  config.migration_prob = 1.5;
  EXPECT_FALSE(
      EvolveHorizontalWorld(DisjointContexts(), WorldLexicon(), config)
          .ok());

  config.migration_prob = 0.1;
  std::vector<CuisineContext> bad = DisjointContexts();
  bad[0].target_recipes = 0;
  EXPECT_FALSE(EvolveHorizontalWorld(bad, WorldLexicon(), config).ok());
}

}  // namespace
}  // namespace culevo

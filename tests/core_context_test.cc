#include "core/evolution_model.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

TEST(ContextFromCorpusTest, DerivesAlgorithmOneInputs) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1, 2, 3}).ok());
  ASSERT_TRUE(builder.Add(0, {1, 4, 5}).ok());
  ASSERT_TRUE(builder.Add(0, {1, 2, 6, 7}).ok());
  ASSERT_TRUE(builder.Add(1, {9}).ok());
  const RecipeCorpus corpus = builder.Build();

  Result<CuisineContext> context = ContextFromCorpus(corpus, 0);
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(context->cuisine, 0);
  EXPECT_EQ(context->ingredients,
            (std::vector<IngredientId>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(context->target_recipes, 3u);
  EXPECT_DOUBLE_EQ(context->phi, 7.0 / 3.0);
  EXPECT_EQ(context->mean_recipe_size, 3);  // round(10/3).

  // Popularity aligned with the ingredient list: ingredient 1 in 3/3.
  ASSERT_EQ(context->popularity.size(), 7u);
  EXPECT_DOUBLE_EQ(context->popularity[0], 1.0);
  EXPECT_DOUBLE_EQ(context->popularity[1], 2.0 / 3.0);  // Ingredient 2.
  EXPECT_DOUBLE_EQ(context->popularity[2], 1.0 / 3.0);  // Ingredient 3.
}

TEST(ContextFromCorpusTest, EmptyCuisineFails) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1}).ok());
  const RecipeCorpus corpus = builder.Build();
  Result<CuisineContext> context = ContextFromCorpus(corpus, 3);
  EXPECT_FALSE(context.ok());
  EXPECT_EQ(context.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ContextFromCorpusTest, BadCuisineIdFails) {
  const RecipeCorpus corpus;
  EXPECT_FALSE(ContextFromCorpus(corpus, kNumCuisines).ok());
}

TEST(RecipesToCorpusTest, PacksRecipes) {
  GeneratedRecipes recipes = {{1, 2}, {3, 4, 5}};
  Result<RecipeCorpus> corpus = RecipesToCorpus(recipes, 7);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 2u);
  EXPECT_EQ(corpus->num_recipes_in(7), 2u);
  EXPECT_EQ(corpus->cuisine_of(1), 7);
}

TEST(RecipesToCorpusTest, RejectsEmptyRecipe) {
  GeneratedRecipes recipes = {{1}, {}};
  EXPECT_FALSE(RecipesToCorpus(recipes, 0).ok());
}

}  // namespace
}  // namespace culevo

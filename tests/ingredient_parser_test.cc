#include "text/ingredient_parser.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

TEST(IngredientParserTest, QuantityUnitAndMention) {
  const ParsedIngredientLine p = ParseIngredientLine("2 cups flour");
  ASSERT_TRUE(p.quantity.has_value());
  EXPECT_DOUBLE_EQ(*p.quantity, 2.0);
  EXPECT_EQ(p.unit, Unit::kCup);
  EXPECT_EQ(p.mention, "flour");
  EXPECT_TRUE(p.preparation.empty());
}

TEST(IngredientParserTest, FractionQuantities) {
  const ParsedIngredientLine half = ParseIngredientLine("1/2 tsp salt");
  ASSERT_TRUE(half.quantity.has_value());
  EXPECT_DOUBLE_EQ(*half.quantity, 0.5);
  EXPECT_EQ(half.unit, Unit::kTeaspoon);
  EXPECT_EQ(half.mention, "salt");

  const ParsedIngredientLine mixed =
      ParseIngredientLine("2 1/2 cups sugar");
  ASSERT_TRUE(mixed.quantity.has_value());
  EXPECT_DOUBLE_EQ(*mixed.quantity, 2.5);
  EXPECT_EQ(mixed.mention, "sugar");
}

TEST(IngredientParserTest, DecimalQuantity) {
  const ParsedIngredientLine p = ParseIngredientLine("0.25 l milk");
  ASSERT_TRUE(p.quantity.has_value());
  EXPECT_DOUBLE_EQ(*p.quantity, 0.25);
  EXPECT_EQ(p.unit, Unit::kLiter);
  EXPECT_EQ(p.mention, "milk");
}

TEST(IngredientParserTest, UnitOfForm) {
  const ParsedIngredientLine p =
      ParseIngredientLine("3 tablespoons of olive oil");
  EXPECT_EQ(p.unit, Unit::kTablespoon);
  EXPECT_EQ(p.mention, "olive oil");
}

TEST(IngredientParserTest, PreparationWordsStripped) {
  const ParsedIngredientLine p =
      ParseIngredientLine("1 cup finely chopped red onion");
  EXPECT_EQ(p.unit, Unit::kCup);
  EXPECT_EQ(p.preparation, "finely chopped");
  EXPECT_EQ(p.mention, "red onion");
}

TEST(IngredientParserTest, NoQuantityNoUnit) {
  const ParsedIngredientLine p = ParseIngredientLine("Salt to taste");
  EXPECT_FALSE(p.quantity.has_value());
  EXPECT_EQ(p.unit, Unit::kNone);
  EXPECT_EQ(p.mention, "salt to taste");
}

TEST(IngredientParserTest, AbbreviatedUnits) {
  EXPECT_EQ(ParseIngredientLine("4 oz cheddar").unit, Unit::kOunce);
  EXPECT_EQ(ParseIngredientLine("2 lbs beef").unit, Unit::kPound);
  EXPECT_EQ(ParseIngredientLine("500 g rice").unit, Unit::kGram);
  EXPECT_EQ(ParseIngredientLine("250 ml cream").unit, Unit::kMilliliter);
  EXPECT_EQ(ParseIngredientLine("2 tbsp butter").unit, Unit::kTablespoon);
}

TEST(IngredientParserTest, CountableUnits) {
  const ParsedIngredientLine p = ParseIngredientLine("3 cloves garlic");
  ASSERT_TRUE(p.quantity.has_value());
  EXPECT_DOUBLE_EQ(*p.quantity, 3.0);
  EXPECT_EQ(p.unit, Unit::kClove);
  EXPECT_EQ(p.mention, "garlic");
}

TEST(IngredientParserTest, QuantityWithoutUnit) {
  const ParsedIngredientLine p = ParseIngredientLine("2 eggs");
  ASSERT_TRUE(p.quantity.has_value());
  EXPECT_DOUBLE_EQ(*p.quantity, 2.0);
  EXPECT_EQ(p.unit, Unit::kNone);
  EXPECT_EQ(p.mention, "eggs");
}

TEST(IngredientParserTest, PunctuationAndCaseHandled) {
  const ParsedIngredientLine p =
      ParseIngredientLine("2 Cups FLOUR, sifted");
  EXPECT_EQ(p.unit, Unit::kCup);
  EXPECT_EQ(p.mention, "flour sifted");
}

TEST(IngredientParserTest, EmptyLine) {
  const ParsedIngredientLine p = ParseIngredientLine("");
  EXPECT_FALSE(p.quantity.has_value());
  EXPECT_EQ(p.unit, Unit::kNone);
  EXPECT_TRUE(p.mention.empty());
}

TEST(IngredientParserTest, MalformedFractionFallsThrough) {
  const ParsedIngredientLine p = ParseIngredientLine("1/0 cup oats");
  // Division by zero is rejected; token joins the mention instead.
  EXPECT_FALSE(p.quantity.has_value());
}

TEST(UnitNameTest, Names) {
  EXPECT_EQ(UnitName(Unit::kNone), "");
  EXPECT_EQ(UnitName(Unit::kTablespoon), "tablespoon");
  EXPECT_EQ(UnitName(Unit::kKilogram), "kilogram");
}

}  // namespace
}  // namespace culevo

#include "service/service_core.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/overrepresentation.h"
#include "analysis/similarity.h"
#include "core/null_model.h"
#include "core/simulation.h"
#include "corpus/corpus_snapshot.h"
#include "lexicon/world_lexicon.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace culevo {
namespace {

// Cuisine ids used throughout; codes resolved from the static table so
// the tests do not hard-code the cuisine order.
constexpr CuisineId kA = 0;
constexpr CuisineId kB = 1;

std::string Code(CuisineId c) { return std::string(CuisineAt(c).code); }

/// Two populated cuisines with overlap, ties, and a conjunction target.
RecipeCorpus SmallCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(kA, {1, 2, 4}).ok());
  EXPECT_TRUE(builder.Add(kA, {2, 5}).ok());
  EXPECT_TRUE(builder.Add(kB, {2, 3, 6}).ok());
  EXPECT_TRUE(builder.Add(kB, {6, 7}).ok());
  return builder.Build();
}

/// A second, distinguishable corpus for swap tests.
RecipeCorpus OtherCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {10, 11}).ok());
  EXPECT_TRUE(builder.Add(kB, {11, 12}).ok());
  EXPECT_TRUE(builder.Add(kB, {12, 13}).ok());
  return builder.Build();
}

ServiceCore MakeCore(ServiceOptions options = {}) {
  return ServiceCore(&WorldLexicon(), options);
}

std::vector<std::string> Rows(const std::string& response) {
  std::vector<std::string> lines = Split(response, '\n');
  // Trailing '\n' produces one empty tail field; drop it plus the header.
  EXPECT_FALSE(lines.empty());
  lines.pop_back();
  EXPECT_FALSE(lines.empty());
  lines.erase(lines.begin());
  return lines;
}

TEST(ServiceCoreTest, PingAndErrors) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_EQ(core.Handle("ping"), "ok 1\npong\n");
  EXPECT_TRUE(StartsWith(core.Handle("bogus"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(core.Handle(""), "error InvalidArgument"));
  EXPECT_TRUE(
      StartsWith(core.Handle("ping frobnicate=1"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(core.Handle("overrep NOPE"), "error NotFound"));
  EXPECT_TRUE(StartsWith(core.Handle("recipe 999"), "error NotFound"));
}

TEST(ServiceCoreTest, NoSnapshotIsFailedPrecondition) {
  ServiceCore core = MakeCore();
  EXPECT_TRUE(StartsWith(core.Handle("ping"), "error FailedPrecondition"));
}

// The served answer must be bit-identical to the batch entry point: the
// rows are rendered with %.17g, so string equality is double equality.
TEST(ServiceCoreTest, OverrepMatchesBatchBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  const auto batch = TopOverrepresented(corpus, kA, 3);
  const std::vector<std::string> rows =
      Rows(core.Handle("overrep " + Code(kA) + " 3"));
  ASSERT_EQ(rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(rows[i],
              StrFormat("%s\t%.17g\t%.17g\t%.17g",
                        WorldLexicon().name(batch[i].ingredient).c_str(),
                        batch[i].score, batch[i].cuisine_fraction,
                        batch[i].world_fraction));
  }
}

TEST(ServiceCoreTest, NearestMatchesBatchBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  const std::vector<CuisineNeighbor> batch = NearestCuisines(corpus, kA, 5);
  const std::vector<std::string> rows =
      Rows(core.Handle("nearest " + Code(kA) + " 5"));
  ASSERT_EQ(rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(rows[i], StrFormat("%s\t%.17g", Code(batch[i].cuisine).c_str(),
                                 batch[i].distance));
  }
}

TEST(ServiceCoreTest, FreqReportsCountFractionRank) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // Ingredient 2 is in all 3 recipes of cuisine A: count 3, fraction 1,
  // rank 1 (highest usage).
  EXPECT_EQ(core.Handle("freq " + Code(kA) + " #2"), "ok 1\n3\t1\t1\n");
  EXPECT_TRUE(StartsWith(core.Handle("freq " + Code(kA) + " #13"),
                         "error NotFound"));
}

TEST(ServiceCoreTest, SearchIntersectsAndFilters) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // Recipes containing both #2 and #3: recipe 0 (cuisine A) and 3 (B).
  std::vector<std::string> rows = Rows(core.Handle("search #2,#3"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(StartsWith(rows[0], "0\t" + Code(kA)));
  EXPECT_TRUE(StartsWith(rows[1], "3\t" + Code(kB)));

  rows = Rows(core.Handle("search #2,#3 cuisine=" + Code(kB)));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(StartsWith(rows[0], "3\t"));

  rows = Rows(core.Handle("search #2,#3 limit=1"));
  EXPECT_EQ(rows.size(), 1u);
}

TEST(ServiceCoreTest, SimulateMatchesDirectRunBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  Result<CuisineContext> context = ContextFromCorpus(corpus, kA);
  ASSERT_TRUE(context.ok()) << context.status();
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 1;
  config.seed = 7;
  Result<SimulationResult> direct =
      RunSimulation(nm, *context, WorldLexicon(), config);
  ASSERT_TRUE(direct.ok()) << direct.status();

  const std::vector<std::string> rows = Rows(core.Handle(
      "simulate " + Code(kA) + " NM replicas=1 seed=7 deadline_ms=60000"));
  ASSERT_EQ(rows.size(), 1 + std::min<size_t>(
                                 direct->ingredient_curve.values().size(),
                                 core.options().max_results));
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i],
              StrFormat("%zu\t%.17g", i,
                        direct->ingredient_curve.values()[i - 1]));
  }
}

TEST(ServiceCoreTest, SimulateClampsReplicas) {
  ServiceOptions options;
  options.max_simulate_replicas = 2;
  ServiceCore core = MakeCore(options);
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_TRUE(StartsWith(core.Handle("simulate " + Code(kA) + " NM "
                                     "replicas=3"),
                         "error InvalidArgument"));
}

TEST(ServiceCoreTest, DeadlineRejection) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // An explicitly non-positive deadline is already expired: the request
  // must be rejected at admission, before any query work runs.
  EXPECT_TRUE(
      StartsWith(core.Handle("ping deadline_ms=0"), "error DeadlineExceeded"));
  EXPECT_TRUE(StartsWith(core.Handle("overrep " + Code(kA) + " deadline_ms=-5"),
                         "error DeadlineExceeded"));
  // A generous deadline passes.
  EXPECT_EQ(core.Handle("ping deadline_ms=60000"), "ok 1\npong\n");
}

TEST(ServiceCoreTest, AdmissionControlRejectsOverCapacity) {
  ServiceOptions options;
  options.max_inflight = 0;  // Every request is over capacity.
  ServiceCore core = MakeCore(options);
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_TRUE(StartsWith(core.Handle("ping"), "error Unavailable"));
}

TEST(ServiceCoreTest, EpochAdvancesPerInstall) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "a").ok());
  EXPECT_EQ(core.Acquire()->epoch, 1u);
  ASSERT_TRUE(core.InstallCorpus(OtherCorpus(), "b").ok());
  EXPECT_EQ(core.Acquire()->epoch, 2u);
  EXPECT_EQ(core.Acquire()->source, "b");
}

TEST(ServiceCoreTest, SnapshotFileAnswersMatchInMemory) {
  const std::string path =
      testing::TempDir() + "culevo_service_snapshot.bin";
  const RecipeCorpus corpus = SmallCorpus();
  ASSERT_TRUE(WriteCorpusSnapshot(path, corpus, {.sync = false}).ok());

  ServiceCore from_memory = MakeCore();
  ASSERT_TRUE(from_memory.InstallCorpus(corpus, "<test>").ok());
  ServiceCore from_file = MakeCore();
  ASSERT_TRUE(from_file.LoadFromFile(path).ok());

  const std::vector<std::string> requests = {
      "overrep " + Code(kA) + " 5", "nearest " + Code(kB),
      "stats " + Code(kA), "freq " + Code(kA) + " #1",
      std::string("search #2,#3")};
  for (const std::string& request : requests) {
    EXPECT_EQ(from_file.Handle(request), from_memory.Handle(request))
        << request;
  }
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, FailedReloadKeepsPreviousGenerationServing) {
  const std::string path =
      testing::TempDir() + "culevo_service_reload.bin";
  ASSERT_TRUE(
      WriteCorpusSnapshot(path, SmallCorpus(), {.sync = false}).ok());

  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.LoadFromFile(path).ok());
  const std::string before = core.Handle("overrep " + Code(kA) + " 3");
  const uint64_t epoch = core.Acquire()->epoch;

  Failpoints::Get().Arm("serve.reload",
                        {.status = Status::IOError("injected reload fault")});
  const Status reload = core.LoadFromFile(path);
  Failpoints::Get().DisarmAll();
  EXPECT_EQ(reload.code(), StatusCode::kIOError);

  // The failed reload must leave the previous generation installed and
  // still answering identically.
  EXPECT_EQ(core.Acquire()->epoch, epoch);
  EXPECT_EQ(core.Handle("overrep " + Code(kA) + " 3"), before);
  std::remove(path.c_str());
}

// RCU swap under concurrency: readers hammer point queries while a writer
// repeatedly installs new generations. Every response must succeed — an
// in-flight request keeps its acquired generation alive, so a swap can
// never fail or tear it. Run under TSan via the tsan preset.
TEST(ServiceCoreTest, ConcurrentReadersAcrossSnapshotSwaps) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "gen0").ok());

  constexpr int kReaders = 4;
  constexpr int kSwaps = 25;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&core, &done, &failures, t] {
      const std::string request = (t % 2 == 0)
                                      ? "overrep " + Code(kA) + " 3"
                                      : "info";
      while (!done.load(std::memory_order_relaxed)) {
        if (!StartsWith(core.Handle(request), "ok ")) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    const Status installed =
        (i % 2 == 0) ? core.InstallCorpus(OtherCorpus(), "odd")
                     : core.InstallCorpus(SmallCorpus(), "even");
    ASSERT_TRUE(installed.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(core.Acquire()->epoch, static_cast<uint64_t>(kSwaps + 1));
}

}  // namespace
}  // namespace culevo

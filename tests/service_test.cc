#include "service/service_core.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/overrepresentation.h"
#include "analysis/similarity.h"
#include "core/null_model.h"
#include "core/simulation.h"
#include "corpus/corpus_snapshot.h"
#include "corpus/ingestion.h"
#include "lexicon/world_lexicon.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace culevo {
namespace {

// Cuisine ids used throughout; codes resolved from the static table so
// the tests do not hard-code the cuisine order.
constexpr CuisineId kA = 0;
constexpr CuisineId kB = 1;

std::string Code(CuisineId c) { return std::string(CuisineAt(c).code); }

/// Two populated cuisines with overlap, ties, and a conjunction target.
RecipeCorpus SmallCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(kA, {1, 2, 4}).ok());
  EXPECT_TRUE(builder.Add(kA, {2, 5}).ok());
  EXPECT_TRUE(builder.Add(kB, {2, 3, 6}).ok());
  EXPECT_TRUE(builder.Add(kB, {6, 7}).ok());
  return builder.Build();
}

/// A second, distinguishable corpus for swap tests.
RecipeCorpus OtherCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {10, 11}).ok());
  EXPECT_TRUE(builder.Add(kB, {11, 12}).ok());
  EXPECT_TRUE(builder.Add(kB, {12, 13}).ok());
  return builder.Build();
}

ServiceCore MakeCore(ServiceOptions options = {}) {
  return ServiceCore(&WorldLexicon(), options);
}

std::vector<std::string> Rows(const std::string& response) {
  std::vector<std::string> lines = Split(response, '\n');
  // Trailing '\n' produces one empty tail field; drop it plus the header.
  EXPECT_FALSE(lines.empty());
  lines.pop_back();
  EXPECT_FALSE(lines.empty());
  lines.erase(lines.begin());
  return lines;
}

TEST(ServiceCoreTest, PingAndErrors) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_EQ(core.Handle("ping"), "ok 1\npong\n");
  EXPECT_TRUE(StartsWith(core.Handle("bogus"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(core.Handle(""), "error InvalidArgument"));
  EXPECT_TRUE(
      StartsWith(core.Handle("ping frobnicate=1"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(core.Handle("overrep NOPE"), "error NotFound"));
  EXPECT_TRUE(StartsWith(core.Handle("recipe 999"), "error NotFound"));
}

TEST(ServiceCoreTest, NoSnapshotIsFailedPrecondition) {
  ServiceCore core = MakeCore();
  EXPECT_TRUE(StartsWith(core.Handle("ping"), "error FailedPrecondition"));
}

// The served answer must be bit-identical to the batch entry point: the
// rows are rendered with %.17g, so string equality is double equality.
TEST(ServiceCoreTest, OverrepMatchesBatchBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  const auto batch = TopOverrepresented(corpus, kA, 3);
  const std::vector<std::string> rows =
      Rows(core.Handle("overrep " + Code(kA) + " 3"));
  ASSERT_EQ(rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(rows[i],
              StrFormat("%s\t%.17g\t%.17g\t%.17g",
                        WorldLexicon().name(batch[i].ingredient).c_str(),
                        batch[i].score, batch[i].cuisine_fraction,
                        batch[i].world_fraction));
  }
}

TEST(ServiceCoreTest, NearestMatchesBatchBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  const std::vector<CuisineNeighbor> batch = NearestCuisines(corpus, kA, 5);
  const std::vector<std::string> rows =
      Rows(core.Handle("nearest " + Code(kA) + " 5"));
  ASSERT_EQ(rows.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(rows[i], StrFormat("%s\t%.17g", Code(batch[i].cuisine).c_str(),
                                 batch[i].distance));
  }
}

TEST(ServiceCoreTest, FreqReportsCountFractionRank) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // Ingredient 2 is in all 3 recipes of cuisine A: count 3, fraction 1,
  // rank 1 (highest usage).
  EXPECT_EQ(core.Handle("freq " + Code(kA) + " #2"), "ok 1\n3\t1\t1\n");
  EXPECT_TRUE(StartsWith(core.Handle("freq " + Code(kA) + " #13"),
                         "error NotFound"));
}

TEST(ServiceCoreTest, SearchIntersectsAndFilters) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // Recipes containing both #2 and #3: recipe 0 (cuisine A) and 3 (B).
  std::vector<std::string> rows = Rows(core.Handle("search #2,#3"));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(StartsWith(rows[0], "0\t" + Code(kA)));
  EXPECT_TRUE(StartsWith(rows[1], "3\t" + Code(kB)));

  rows = Rows(core.Handle("search #2,#3 cuisine=" + Code(kB)));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(StartsWith(rows[0], "3\t"));

  rows = Rows(core.Handle("search #2,#3 limit=1"));
  EXPECT_EQ(rows.size(), 1u);
}

TEST(ServiceCoreTest, SimulateMatchesDirectRunBitExactly) {
  const RecipeCorpus corpus = SmallCorpus();
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(corpus, "<test>").ok());

  Result<CuisineContext> context = ContextFromCorpus(corpus, kA);
  ASSERT_TRUE(context.ok()) << context.status();
  const NullModel nm;
  SimulationConfig config;
  config.replicas = 1;
  config.seed = 7;
  Result<SimulationResult> direct =
      RunSimulation(nm, *context, WorldLexicon(), config);
  ASSERT_TRUE(direct.ok()) << direct.status();

  const std::vector<std::string> rows = Rows(core.Handle(
      "simulate " + Code(kA) + " NM replicas=1 seed=7 deadline_ms=60000"));
  ASSERT_EQ(rows.size(), 1 + std::min<size_t>(
                                 direct->ingredient_curve.values().size(),
                                 core.options().max_results));
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i],
              StrFormat("%zu\t%.17g", i,
                        direct->ingredient_curve.values()[i - 1]));
  }
}

TEST(ServiceCoreTest, SimulateClampsReplicas) {
  ServiceOptions options;
  options.max_simulate_replicas = 2;
  ServiceCore core = MakeCore(options);
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_TRUE(StartsWith(core.Handle("simulate " + Code(kA) + " NM "
                                     "replicas=3"),
                         "error InvalidArgument"));
}

TEST(ServiceCoreTest, DeadlineRejection) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  // An explicitly non-positive deadline is already expired: the request
  // must be rejected at admission, before any query work runs.
  EXPECT_TRUE(
      StartsWith(core.Handle("ping deadline_ms=0"), "error DeadlineExceeded"));
  EXPECT_TRUE(StartsWith(core.Handle("overrep " + Code(kA) + " deadline_ms=-5"),
                         "error DeadlineExceeded"));
  // A generous deadline passes.
  EXPECT_EQ(core.Handle("ping deadline_ms=60000"), "ok 1\npong\n");
}

TEST(ServiceCoreTest, AdmissionControlRejectsOverCapacity) {
  ServiceOptions options;
  options.max_inflight = 0;  // Every request is over capacity.
  ServiceCore core = MakeCore(options);
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_TRUE(StartsWith(core.Handle("ping"), "error Unavailable"));
}

TEST(ServiceCoreTest, EpochAdvancesPerInstall) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "a").ok());
  EXPECT_EQ(core.Acquire()->epoch, 1u);
  ASSERT_TRUE(core.InstallCorpus(OtherCorpus(), "b").ok());
  EXPECT_EQ(core.Acquire()->epoch, 2u);
  EXPECT_EQ(core.Acquire()->source, "b");
}

TEST(ServiceCoreTest, SnapshotFileAnswersMatchInMemory) {
  const std::string path =
      testing::TempDir() + "culevo_service_snapshot.bin";
  const RecipeCorpus corpus = SmallCorpus();
  ASSERT_TRUE(WriteCorpusSnapshot(path, corpus, {.sync = false}).ok());

  ServiceCore from_memory = MakeCore();
  ASSERT_TRUE(from_memory.InstallCorpus(corpus, "<test>").ok());
  ServiceCore from_file = MakeCore();
  ASSERT_TRUE(from_file.LoadFromFile(path).ok());

  const std::vector<std::string> requests = {
      "overrep " + Code(kA) + " 5", "nearest " + Code(kB),
      "stats " + Code(kA), "freq " + Code(kA) + " #1",
      std::string("search #2,#3")};
  for (const std::string& request : requests) {
    EXPECT_EQ(from_file.Handle(request), from_memory.Handle(request))
        << request;
  }
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, FailedReloadKeepsPreviousGenerationServing) {
  const std::string path =
      testing::TempDir() + "culevo_service_reload.bin";
  ASSERT_TRUE(
      WriteCorpusSnapshot(path, SmallCorpus(), {.sync = false}).ok());

  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.LoadFromFile(path).ok());
  const std::string before = core.Handle("overrep " + Code(kA) + " 3");
  const uint64_t epoch = core.Acquire()->epoch;

  Failpoints::Get().Arm("serve.reload",
                        {.status = Status::IOError("injected reload fault")});
  const Status reload = core.LoadFromFile(path);
  Failpoints::Get().DisarmAll();
  EXPECT_EQ(reload.code(), StatusCode::kIOError);

  // The failed reload must leave the previous generation installed and
  // still answering identically.
  EXPECT_EQ(core.Acquire()->epoch, epoch);
  EXPECT_EQ(core.Handle("overrep " + Code(kA) + " 3"), before);
  std::remove(path.c_str());
}

// RCU swap under concurrency: readers hammer point queries while a writer
// repeatedly installs new generations. Every response must succeed — an
// in-flight request keeps its acquired generation alive, so a swap can
// never fail or tear it. Run under TSan via the tsan preset.
TEST(ServiceCoreTest, ConcurrentReadersAcrossSnapshotSwaps) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "gen0").ok());

  constexpr int kReaders = 4;
  constexpr int kSwaps = 25;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&core, &done, &failures, t] {
      const std::string request = (t % 2 == 0)
                                      ? "overrep " + Code(kA) + " 3"
                                      : "info";
      while (!done.load(std::memory_order_relaxed)) {
        if (!StartsWith(core.Handle(request), "ok ")) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kSwaps; ++i) {
    const Status installed =
        (i % 2 == 0) ? core.InstallCorpus(OtherCorpus(), "odd")
                     : core.InstallCorpus(SmallCorpus(), "even");
    ASSERT_TRUE(installed.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(core.Acquire()->epoch, static_cast<uint64_t>(kSwaps + 1));
}

// ---------------------------------------------------------------------------
// Brownout (graceful degradation under overload).

TEST(ServiceCoreTest, ShouldShedExpensivePredicate) {
  ServiceOptions options;
  options.max_inflight = 100;
  options.brownout_inflight_fraction = 0.75;
  options.brownout_latency_ms = 0;  // latency trigger off

  // The inflight trigger fires strictly above fraction * max_inflight.
  EXPECT_FALSE(ShouldShedExpensive(options, 75, 0.0));
  EXPECT_TRUE(ShouldShedExpensive(options, 76, 0.0));

  // Latency trigger: only above the threshold, and only when enabled.
  options.brownout_inflight_fraction = 0;  // inflight trigger off
  options.brownout_latency_ms = 10;
  EXPECT_FALSE(ShouldShedExpensive(options, 1000, 9.0));
  EXPECT_TRUE(ShouldShedExpensive(options, 0, 10.5));
  options.brownout_latency_ms = 0;
  EXPECT_FALSE(ShouldShedExpensive(options, 1000, 1e9));

  // Either trigger alone is sufficient.
  options.brownout_inflight_fraction = 0.5;
  options.brownout_latency_ms = 10;
  EXPECT_TRUE(ShouldShedExpensive(options, 51, 0.0));
  EXPECT_TRUE(ShouldShedExpensive(options, 0, 11.0));
  EXPECT_FALSE(ShouldShedExpensive(options, 50, 10.0));
}

TEST(ServiceCoreTest, BrownoutShedsExpensiveKeepsCheapAndAdmin) {
  ServiceOptions options;
  // A latency SLO so tiny that the very first completed request trips the
  // overload detector — a deterministic brownout without real load.
  options.brownout_latency_ms = 1e-9;
  ServiceCore core = MakeCore(options);
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());

  // Seed the latency EMA with one cheap request.
  EXPECT_EQ(core.Handle("ping"), "ok 1\npong\n");
  ASSERT_GT(core.latency_ema_ms(), 0.0);

  // Expensive classes are shed with a machine-readable retry hint...
  const std::string shed = core.Handle("simulate " + Code(kA) + " NM");
  EXPECT_TRUE(StartsWith(shed, "error Unavailable")) << shed;
  EXPECT_NE(shed.find("\nretry-after-ms\t50\n"), std::string::npos) << shed;
  EXPECT_TRUE(StartsWith(core.Handle("search #2,#3"), "error Unavailable"));

  // ...while cheap point lookups and admin requests keep being served.
  EXPECT_TRUE(StartsWith(core.Handle("overrep " + Code(kA) + " 3"), "ok "));
  EXPECT_TRUE(StartsWith(core.Handle("stats " + Code(kA)), "ok "));
  EXPECT_TRUE(StartsWith(core.Handle("metrics"), "ok "));
}

TEST(ServiceCoreTest, BrownoutDisabledByDefaultLatencyTrigger) {
  ServiceCore core = MakeCore();  // brownout_latency_ms defaults to 0
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "<test>").ok());
  EXPECT_EQ(core.Handle("ping"), "ok 1\npong\n");
  EXPECT_TRUE(StartsWith(
      core.Handle("simulate " + Code(kA) + " NM replicas=1 seed=7"
                  " deadline_ms=60000"),
      "ok "));
}

TEST(ServiceCoreTest, MetricsWorksWithoutSnapshot) {
  ServiceCore core = MakeCore();
  const std::string response = core.Handle("metrics");
  EXPECT_TRUE(StartsWith(response, "ok ")) << response;
  EXPECT_NE(response.find("counter\tserve.requests\t"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CULEVO-DELTA files and the hot incremental reload.

/// The delta applied on top of SmallCorpus() throughout: two new recipes.
std::vector<CorpusDeltaRecord> DeltaRecords() {
  return {{kA, {7, 8}}, {kB, {1, 5}}};
}

/// SmallCorpus() + DeltaRecords(), built monolithically — the ground
/// truth a delta reload must match bit-for-bit.
RecipeCorpus CombinedCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(kA, {1, 2, 3}).ok());
  EXPECT_TRUE(builder.Add(kA, {1, 2, 4}).ok());
  EXPECT_TRUE(builder.Add(kA, {2, 5}).ok());
  EXPECT_TRUE(builder.Add(kB, {2, 3, 6}).ok());
  EXPECT_TRUE(builder.Add(kB, {6, 7}).ok());
  EXPECT_TRUE(builder.Add(kA, {7, 8}).ok());
  EXPECT_TRUE(builder.Add(kB, {1, 5}).ok());
  return builder.Build();
}

std::string WriteDeltaFor(const RecipeCorpus& base, const std::string& tag) {
  const std::string path =
      testing::TempDir() + "culevo_delta_" + tag + ".bin";
  CorpusDelta delta;
  delta.base_recipes = base.num_recipes();
  delta.base_fingerprint = CorpusContentFingerprint(base);
  delta.records = DeltaRecords();
  EXPECT_TRUE(WriteCorpusDelta(path, delta, {.sync = false}).ok());
  return path;
}

TEST(CorpusDeltaTest, FingerprintTracksContentNotConstruction) {
  // Identical content through different construction paths fingerprints
  // identically; any content change perturbs it.
  EXPECT_EQ(CorpusContentFingerprint(SmallCorpus()),
            CorpusContentFingerprint(SmallCorpus()));
  EXPECT_NE(CorpusContentFingerprint(SmallCorpus()),
            CorpusContentFingerprint(OtherCorpus()));
  EXPECT_NE(CorpusContentFingerprint(SmallCorpus()),
            CorpusContentFingerprint(CombinedCorpus()));
}

TEST(CorpusDeltaTest, WriteLoadRoundTrip) {
  const RecipeCorpus base = SmallCorpus();
  const std::string path = WriteDeltaFor(base, "roundtrip");

  Result<CorpusDelta> loaded = LoadCorpusDelta(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->base_recipes, base.num_recipes());
  EXPECT_EQ(loaded->base_fingerprint, CorpusContentFingerprint(base));
  const std::vector<CorpusDeltaRecord> expected = DeltaRecords();
  ASSERT_EQ(loaded->records.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(loaded->records[i].cuisine, expected[i].cuisine);
    EXPECT_EQ(loaded->records[i].ingredients, expected[i].ingredients);
  }
  std::remove(path.c_str());
}

TEST(CorpusDeltaTest, WriteRefusesInvalidRecords) {
  CorpusDelta delta;
  delta.records.push_back({kA, {}});  // empty recipe
  EXPECT_EQ(WriteCorpusDelta(testing::TempDir() + "culevo_delta_bad.bin",
                             delta, {.sync = false})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CorpusDeltaTest, LoadRefusalMatrix) {
  const std::string path = WriteDeltaFor(SmallCorpus(), "refusal");
  Result<std::string> pristine = ReadFileToString(path);
  ASSERT_TRUE(pristine.ok()) << pristine.status();
  const std::string bytes = *pristine;

  const auto write_bytes = [&](const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Missing file: NotFound (distinct from a present-but-corrupt file).
  EXPECT_EQ(LoadCorpusDelta(path + ".absent").status().code(),
            StatusCode::kNotFound);

  // Corrupt magic: not a delta file at all.
  std::string corrupt = bytes;
  corrupt[0] = 'X';
  write_bytes(corrupt);
  EXPECT_EQ(LoadCorpusDelta(path).status().code(),
            StatusCode::kInvalidArgument);

  // Unsupported version: a delta file, but not one we can apply.
  corrupt = bytes;
  corrupt[8] = 99;  // u32 version at offset 8
  write_bytes(corrupt);
  EXPECT_EQ(LoadCorpusDelta(path).status().code(),
            StatusCode::kFailedPrecondition);

  // Truncation: torn write.
  write_bytes(bytes.substr(0, bytes.size() - 1));
  EXPECT_EQ(LoadCorpusDelta(path).status().code(), StatusCode::kDataLoss);

  // Payload corruption caught by the checksum.
  corrupt = bytes;
  corrupt[bytes.size() - 1] ^= 0x5A;
  write_bytes(corrupt);
  EXPECT_EQ(LoadCorpusDelta(path).status().code(), StatusCode::kDataLoss);

  // The pristine bytes still load after all that.
  write_bytes(bytes);
  EXPECT_TRUE(LoadCorpusDelta(path).ok());
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, ReloadDeltaMatchesMonolithicBuildBitExactly) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "base").ok());
  const std::string path = WriteDeltaFor(SmallCorpus(), "reload");

  ASSERT_TRUE(core.ReloadDelta(path).ok());
  const std::shared_ptr<const ServiceSnapshot> swapped = core.Acquire();
  EXPECT_EQ(swapped->epoch, 2u);
  EXPECT_EQ(swapped->source, "base+" + path);
  EXPECT_EQ(swapped->corpus.num_recipes(), 7u);
  EXPECT_EQ(swapped->content_fingerprint,
            CorpusContentFingerprint(CombinedCorpus()));

  // Every query class must answer bit-identically to a core built on the
  // monolithic combined corpus.
  ServiceCore reference = MakeCore();
  ASSERT_TRUE(reference.InstallCorpus(CombinedCorpus(), "base").ok());
  const std::vector<std::string> requests = {
      "overrep " + Code(kA) + " 5", "overrep " + Code(kB) + " 5",
      "nearest " + Code(kA),        "stats " + Code(kA),
      "stats " + Code(kB),          "freq " + Code(kA) + " #7",
      "search #1,#5",               "recipe 5",
      "recipe 6"};
  for (const std::string& request : requests) {
    EXPECT_EQ(core.Handle(request), reference.Handle(request)) << request;
  }
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, ReloadDeltaRefusesMismatchedBase) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "base").ok());
  // A delta built against a *different* base corpus: both the recipe
  // count and the fingerprint disagree with the serving generation.
  const std::string path = WriteDeltaFor(OtherCorpus(), "mismatch");
  const std::string before = core.Handle("overrep " + Code(kA) + " 3");

  const Status refused = core.ReloadDelta(path);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;

  // Refusal is non-destructive: same epoch, same answers.
  EXPECT_EQ(core.Acquire()->epoch, 1u);
  EXPECT_EQ(core.Handle("overrep " + Code(kA) + " 3"), before);
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, ReloadDeltaWithoutGenerationIsFailedPrecondition) {
  ServiceCore core = MakeCore();
  const std::string path = WriteDeltaFor(SmallCorpus(), "nogen");
  EXPECT_EQ(core.ReloadDelta(path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

// Crash-safety of the swap itself: a fault injected at *every* stage of
// the delta reload must leave the old generation serving unchanged, and
// the swap must still succeed once the fault clears.
TEST(ServiceCoreTest, ReloadDeltaFailpointAtEveryStageKeepsOldGeneration) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "base").ok());
  const std::string path = WriteDeltaFor(SmallCorpus(), "stages");
  const std::string before = core.Handle("overrep " + Code(kA) + " 3");

  const std::vector<std::string> stages = {
      "serve.reload",       "serve.reload.delta.read",
      "corpus.delta.read",  "serve.reload.delta.apply",
      "serve.reload.index", "serve.reload.install"};
  for (const std::string& stage : stages) {
    Failpoints::Get().Arm(
        stage, {.status = Status::IOError("injected at " + stage)});
    const Status failed = core.ReloadDelta(path);
    Failpoints::Get().DisarmAll();
    EXPECT_EQ(failed.code(), StatusCode::kIOError) << stage;
    EXPECT_EQ(core.Acquire()->epoch, 1u) << stage;
    EXPECT_EQ(core.Handle("overrep " + Code(kA) + " 3"), before) << stage;
  }

  // Fault cleared: the identical request now swaps cleanly.
  ASSERT_TRUE(core.ReloadDelta(path).ok());
  EXPECT_EQ(core.Acquire()->epoch, 2u);
  std::remove(path.c_str());
}

TEST(ServiceCoreTest, ReloadDeltaThroughRequestGrammar) {
  ServiceCore core = MakeCore();
  ASSERT_TRUE(core.InstallCorpus(SmallCorpus(), "base").ok());
  const std::string path = WriteDeltaFor(SmallCorpus(), "grammar");

  EXPECT_TRUE(StartsWith(core.Handle("reload-delta"),
                         "error InvalidArgument"));
  const std::string response = core.Handle("reload-delta " + path);
  EXPECT_EQ(response, "ok 2\nepoch\t2\nrecipes\t7\n") << response;

  // A second apply of the same delta is now a base mismatch (the serving
  // generation moved past it) — refused, still epoch 2.
  EXPECT_TRUE(StartsWith(core.Handle("reload-delta " + path),
                         "error FailedPrecondition"));
  EXPECT_EQ(core.Acquire()->epoch, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace culevo

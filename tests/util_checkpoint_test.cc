// Corruption-matrix tests for the generic checksummed journal layer
// (util/checkpoint.h): roundtrips, torn/bit-flipped tails, version and
// magic mismatches, failpoint-driven write/read failures, and the
// quarantine-then-rewrite protocol. Domain-level resume semantics are in
// checkpoint_resume_test.cc.

#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/csv.h"
#include "util/failpoint.h"

namespace culevo {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/culevo_checkpoint_test.journal";
  }
  void TearDown() override { Failpoints::Get().DisarmAll(); }

  /// A fresh journal holding `payloads`, written through JournalWriter.
  void WriteJournal(const std::vector<std::string>& payloads) {
    JournalWriter writer;
    JournalWriter::Options options;
    options.sync = false;
    ASSERT_TRUE(writer.Open(path_, {}, options).ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(writer.Append(payload).ok());
    }
  }

  std::string ReadRaw() {
    Result<std::string> raw = ReadFileToString(path_);
    EXPECT_TRUE(raw.ok());
    return raw.ok() ? raw.value() : std::string();
  }

  std::string path_;
};

TEST_F(CheckpointTest, ChecksumIsDeterministicAndContentSensitive) {
  EXPECT_EQ(JournalChecksum("abc"), JournalChecksum("abc"));
  EXPECT_NE(JournalChecksum("abc"), JournalChecksum("abd"));
  EXPECT_NE(JournalChecksum(""), JournalChecksum(" "));
}

TEST_F(CheckpointTest, WriteReadRoundtrip) {
  WriteJournal({"kind=a x=1", "kind=b y=2", ""});
  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records,
            (std::vector<std::string>{"kind=a x=1", "kind=b y=2", ""}));
  EXPECT_EQ(contents->quarantined_records, 0);
  EXPECT_FALSE(contents->tail_quarantined());
}

TEST_F(CheckpointTest, OpenSeedsWithExistingRecordsAndFlushesImmediately) {
  JournalWriter writer;
  JournalWriter::Options options;
  options.sync = false;
  ASSERT_TRUE(writer.Open(path_, {"one", "two"}, options).ok());
  EXPECT_EQ(writer.num_records(), 2u);
  // Valid on disk before any Append: an interrupted run that never
  // completes a record still leaves a resumable journal.
  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records, (std::vector<std::string>{"one", "two"}));
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  Result<JournalContents> contents =
      ReadJournal(::testing::TempDir() + "/culevo_no_such.journal");
  EXPECT_EQ(contents.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, BadMagicIsInvalidArgument) {
  ASSERT_TRUE(
      WriteStringToFile(path_, "NOT-A-JOURNAL 1\nwhatever\n").ok());
  EXPECT_EQ(ReadJournal(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, NewerFormatVersionIsRefused) {
  std::string content = JournalHeader(kJournalFormatVersion + 1);
  content.push_back('\n');
  content.append(FormatJournalRecord("record"));
  ASSERT_TRUE(WriteStringToFile(path_, content).ok());
  EXPECT_EQ(ReadJournal(path_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, BitFlipQuarantinesTailButSalvagesPrefix) {
  WriteJournal({"first", "second", "third"});
  std::string raw = ReadRaw();
  // Flip one payload byte of the *second* record.
  const size_t pos = raw.find("second");
  ASSERT_NE(pos, std::string::npos);
  raw[pos] = 'S';
  ASSERT_TRUE(WriteStringToFile(path_, raw).ok());

  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());  // corruption never fails the read
  EXPECT_EQ(contents->records, (std::vector<std::string>{"first"}));
  EXPECT_EQ(contents->quarantined_records, 2);  // "Second" and "third"
  EXPECT_TRUE(contents->tail_quarantined());
}

TEST_F(CheckpointTest, TruncationQuarantinesTornTail) {
  WriteJournal({"first", "second"});
  std::string raw = ReadRaw();
  // Chop mid-way through the last record (drops its newline).
  raw.resize(raw.size() - 4);
  ASSERT_TRUE(WriteStringToFile(path_, raw).ok());

  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records, (std::vector<std::string>{"first"}));
  EXPECT_EQ(contents->quarantined_records, 1);
}

TEST_F(CheckpointTest, TruncatedChecksumReadsAsCorruptNotShortNumber) {
  WriteJournal({"first"});
  std::string raw = ReadRaw();
  // Replace the record line with one whose checksum field is too short.
  const size_t line_start = raw.find('\n') + 1;
  raw.resize(line_start);
  raw += "abc first\n";
  ASSERT_TRUE(WriteStringToFile(path_, raw).ok());

  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->quarantined_records, 1);
}

TEST_F(CheckpointTest, QuarantinedPrefixIsDurablyRewrittenOnContinue) {
  WriteJournal({"first", "second", "third"});
  std::string raw = ReadRaw();
  const size_t pos = raw.find("second");
  raw[pos] = 'X';
  ASSERT_TRUE(WriteStringToFile(path_, raw).ok());

  Result<JournalContents> salvaged = ReadJournal(path_);
  ASSERT_TRUE(salvaged.ok());

  // Continue the journal from the salvaged prefix, as a resuming run
  // does: the corrupt tail is gone from disk after the next append.
  JournalWriter writer;
  JournalWriter::Options options;
  options.sync = false;
  ASSERT_TRUE(writer.Open(path_, salvaged->records, options).ok());
  ASSERT_TRUE(writer.Append("fourth").ok());

  Result<JournalContents> reread = ReadJournal(path_);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->records, (std::vector<std::string>{"first", "fourth"}));
  EXPECT_EQ(reread->quarantined_records, 0);
}

TEST_F(CheckpointTest, PayloadWithNewlineIsRejected) {
  JournalWriter writer;
  JournalWriter::Options options;
  options.sync = false;
  ASSERT_TRUE(writer.Open(path_, {}, options).ok());
  EXPECT_EQ(writer.Append("two\nlines").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, WriteFailpointRollsBackInMemoryImage) {
  JournalWriter writer;
  JournalWriter::Options options;
  options.sync = false;
  ASSERT_TRUE(writer.Open(path_, {}, options).ok());
  ASSERT_TRUE(writer.Append("first").ok());

  Failpoints::ArmSpec spec;
  spec.fires = 1;
  Failpoints::Get().Arm("ckpt.write.record", spec);
  EXPECT_FALSE(writer.Append("lost").ok());
  Failpoints::Get().DisarmAll();

  // The failed record must not be smuggled in by the next success.
  ASSERT_TRUE(writer.Append("second").ok());
  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records,
            (std::vector<std::string>{"first", "second"}));
}

TEST_F(CheckpointTest, ReadFailpointFailsTheRead) {
  WriteJournal({"first"});
  Failpoints::Get().Arm("ckpt.read.journal");
  EXPECT_FALSE(ReadJournal(path_).ok());
}

TEST_F(CheckpointTest, CorruptFailpointForcesQuarantinePath) {
  WriteJournal({"first", "second"});
  // Treats the first record as corrupt without hand-crafting bit flips.
  Failpoints::Get().Arm("ckpt.read.corrupt");
  Result<JournalContents> contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->records.empty());
  EXPECT_EQ(contents->quarantined_records, 2);
}

TEST_F(CheckpointTest, MetricsCountWritesLoadsAndCorruption) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter* written = registry.counter("ckpt.records_written");
  obs::Counter* bytes = registry.counter("ckpt.bytes_written");
  obs::Counter* loaded = registry.counter("ckpt.records_loaded");
  obs::Counter* corrupt = registry.counter("ckpt.corrupt_records");
  const int64_t written0 = written->Value();
  const int64_t bytes0 = bytes->Value();
  const int64_t loaded0 = loaded->Value();
  const int64_t corrupt0 = corrupt->Value();

  WriteJournal({"first", "second"});
  EXPECT_EQ(written->Value() - written0, 2);
  EXPECT_GT(bytes->Value() - bytes0, 0);

  std::string raw = ReadRaw();
  raw[raw.find("second")] = 'X';
  ASSERT_TRUE(WriteStringToFile(path_, raw).ok());
  ASSERT_TRUE(ReadJournal(path_).ok());
  EXPECT_EQ(loaded->Value() - loaded0, 1);
  EXPECT_EQ(corrupt->Value() - corrupt0, 1);
}

}  // namespace
}  // namespace culevo

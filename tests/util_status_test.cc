#include "util/status.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("because").ToString(),
            "InvalidArgument: because");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x) {
  CULEVO_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace culevo

#include "corpus/corpus_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "lexicon/world_lexicon.h"
#include "util/failpoint.h"

namespace culevo {
namespace {

TEST(CorpusIoTest, ParsesRecipesThroughLexicon) {
  const Lexicon& lexicon = WorldLexicon();
  Result<RecipeCorpus> corpus = ParseCorpusTsv(
      "# a comment\n"
      "ITA\tTomato; Basil ;Olive Oil\n"
      "JPN\tsoy sauce;Rice\n",
      lexicon);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->num_recipes(), 2u);
  EXPECT_EQ(corpus->num_recipes_in(CuisineFromCode("ITA").value()), 1u);
  EXPECT_EQ(corpus->ingredients_of(0).size(), 3u);
  // Alias resolution: "soy sauce" -> Soybean Sauce.
  const auto sauce = lexicon.Find("Soybean Sauce");
  bool found = false;
  for (IngredientId id : corpus->ingredients_of(1)) found |= (id == *sauce);
  EXPECT_TRUE(found);
}

TEST(CorpusIoTest, UnknownIngredientFailsByDefault) {
  Result<RecipeCorpus> corpus =
      ParseCorpusTsv("ITA\tTomato;Unobtainium\n", WorldLexicon());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kNotFound);
}

TEST(CorpusIoTest, SkipUnknownDropsMentions) {
  Result<RecipeCorpus> corpus = ParseCorpusTsv(
      "ITA\tTomato;Unobtainium\nITA\tUnobtainium;Kryptonite\n",
      WorldLexicon(), /*skip_unknown=*/true);
  ASSERT_TRUE(corpus.ok());
  // Second recipe becomes empty and is dropped entirely.
  EXPECT_EQ(corpus->num_recipes(), 1u);
  EXPECT_EQ(corpus->ingredients_of(0).size(), 1u);
}

TEST(CorpusIoTest, UnknownCuisineFails) {
  EXPECT_FALSE(ParseCorpusTsv("XX\tTomato\n", WorldLexicon()).ok());
}

TEST(CorpusIoTest, MalformedLineFails) {
  EXPECT_FALSE(ParseCorpusTsv("ITA only one field\n", WorldLexicon()).ok());
  EXPECT_FALSE(
      ParseCorpusTsv("ITA\tTomato\textra\n", WorldLexicon()).ok());
}

TEST(CorpusIoTest, FreeFormMentionsResolveByScanning) {
  Result<RecipeCorpus> corpus = ParseCorpusTsv(
      "INSC\t2 cups ginger garlic paste;1 tsp turmeric powder\n",
      WorldLexicon(), /*skip_unknown=*/true);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus->num_recipes(), 1u);
  const Lexicon& lexicon = WorldLexicon();
  std::vector<std::string> names;
  for (IngredientId id : corpus->ingredients_of(0)) {
    names.push_back(lexicon.name(id));
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "Ginger Garlic Paste"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Turmeric"), names.end());
}

TEST(CorpusIoTest, RoundTripPreservesContent) {
  const Lexicon& lexicon = WorldLexicon();
  Result<RecipeCorpus> original = ParseCorpusTsv(
      "ITA\tTomato;Basil\nKOR\tSesame;Garlic;Sugar\n", lexicon);
  ASSERT_TRUE(original.ok());
  const std::string serialized = FormatCorpusTsv(original.value(), lexicon);
  Result<RecipeCorpus> reparsed = ParseCorpusTsv(serialized, lexicon);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->num_recipes(), original->num_recipes());
  for (uint32_t i = 0; i < original->num_recipes(); ++i) {
    EXPECT_EQ(reparsed->cuisine_of(i), original->cuisine_of(i));
    EXPECT_EQ(std::vector<IngredientId>(reparsed->ingredients_of(i).begin(),
                                        reparsed->ingredients_of(i).end()),
              std::vector<IngredientId>(original->ingredients_of(i).begin(),
                                        original->ingredients_of(i).end()));
  }
}

TEST(CorpusIoTest, FileRoundTrip) {
  const Lexicon& lexicon = WorldLexicon();
  Result<RecipeCorpus> original =
      ParseCorpusTsv("FRA\tButter;Cream;Egg\n", lexicon);
  ASSERT_TRUE(original.ok());
  const std::string path = ::testing::TempDir() + "/culevo_corpus.tsv";
  ASSERT_TRUE(WriteCorpusTsv(path, original.value(), lexicon).ok());
  Result<RecipeCorpus> loaded = ReadCorpusTsv(path, lexicon);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_recipes(), 1u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, ReadMissingFileFails) {
  Result<RecipeCorpus> corpus =
      ReadCorpusTsv("/nonexistent/corpus.tsv", WorldLexicon());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIOError);
}

// Failpoint-driven I/O error paths: a read that fails before the file is
// opened (corpus.read), one that fails mid-stream after a successful open
// (io.read.stream), and a row-level parse fault — all propagate the
// injected Status instead of crashing or returning a half-parsed corpus.
class CorpusIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/culevo_corpus_fault.tsv";
    const Lexicon& lexicon = WorldLexicon();
    Result<RecipeCorpus> corpus =
        ParseCorpusTsv("ITA\tTomato;Basil\nFRA\tButter\n", lexicon);
    ASSERT_TRUE(corpus.ok());
    ASSERT_TRUE(WriteCorpusTsv(path_, corpus.value(), lexicon).ok());
  }
  void TearDown() override {
    Failpoints::Get().DisarmAll();
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(CorpusIoFaultTest, ReadFailpointPropagates) {
  Failpoints::Get().Arm("corpus.read");
  Result<RecipeCorpus> corpus = ReadCorpusTsv(path_, WorldLexicon());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIOError);
}

TEST_F(CorpusIoFaultTest, MidStreamReadFailurePropagates) {
  Failpoints::Get().Arm("io.read.stream");
  Result<RecipeCorpus> corpus = ReadCorpusTsv(path_, WorldLexicon());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIOError);
}

TEST_F(CorpusIoFaultTest, RowFaultAbortsParseNotJustTheRow) {
  // Fail on the second data row: the parse must not return a corpus
  // containing only the rows before the fault.
  Failpoints::ArmSpec spec;
  spec.skip = 1;
  Failpoints::Get().Arm("corpus.parse.row", spec);
  Result<RecipeCorpus> corpus = ReadCorpusTsv(path_, WorldLexicon());
  ASSERT_FALSE(corpus.ok());
  EXPECT_EQ(corpus.status().code(), StatusCode::kIOError);
  // Disarmed, the same file parses completely.
  Failpoints::Get().DisarmAll();
  Result<RecipeCorpus> clean = ReadCorpusTsv(path_, WorldLexicon());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->num_recipes(), 2u);
}

}  // namespace
}  // namespace culevo

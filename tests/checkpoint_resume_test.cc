// Resume-protocol tests for the crash-recovery subsystem: the
// bit-identical resume-equivalence guarantee for every model, manifest
// mismatch refusals, corruption recovery at the RunSimulation level,
// RunReport continuity across attempts, and sweep-point checkpointing.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/copy_mutate.h"
#include "core/null_model.h"
#include "core/run_journal.h"
#include "core/simulation.h"
#include "core/sweeps.h"
#include "lexicon/world_lexicon.h"
#include "obs/metrics.h"
#include "synth/generator.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace culevo {
namespace {

CuisineContext SmallContext() {
  CuisineContext context;
  context.cuisine = 0;
  for (IngredientId id = 0; id < 100; ++id) {
    context.ingredients.push_back(id);
  }
  context.popularity.assign(100, 0.5);
  context.mean_recipe_size = 6;
  context.target_recipes = 160;
  context.phi = 0.5;
  return context;
}

/// Transparent wrapper that trips a CancelToken after a fixed number of
/// generate calls. Unlike the fault_injection_test variant it delegates
/// ConfigFingerprint too: a checkpoint written through the wrapper must
/// be resumable by the bare model, so the wrapper may not change the
/// run's manifest identity.
class InterruptModel : public EvolutionModel {
 public:
  InterruptModel(const EvolutionModel* inner, CancelToken* token, int fuse)
      : inner_(inner), token_(token), fuse_(fuse) {}

  std::string name() const override { return inner_->name(); }
  uint64_t ConfigFingerprint() const override {
    return inner_->ConfigFingerprint();
  }

  Status Generate(const CuisineContext& context, uint64_t seed,
                  GeneratedRecipes* out) const override {
    return inner_->Generate(context, seed, out);
  }

  Status GenerateInto(const CuisineContext& context, uint64_t seed,
                      RecipeStore* store) const override {
    if (--fuse_ == 0) token_->Cancel();
    return inner_->GenerateInto(context, seed, store);
  }

 private:
  const EvolutionModel* inner_;
  CancelToken* token_;
  mutable int fuse_;
};

/// Transparent wrapper that fails every attempt whose seed is denied,
/// again preserving the inner model's manifest identity.
class FlakyModel : public EvolutionModel {
 public:
  FlakyModel(const EvolutionModel* inner, std::vector<uint64_t> deny)
      : inner_(inner), deny_(std::move(deny)) {}

  std::string name() const override { return inner_->name(); }
  uint64_t ConfigFingerprint() const override {
    return inner_->ConfigFingerprint();
  }

  Status Generate(const CuisineContext& context, uint64_t seed,
                  GeneratedRecipes* out) const override {
    CULEVO_RETURN_IF_ERROR(CheckSeed(seed));
    return inner_->Generate(context, seed, out);
  }

  Status GenerateInto(const CuisineContext& context, uint64_t seed,
                      RecipeStore* store) const override {
    CULEVO_RETURN_IF_ERROR(CheckSeed(seed));
    return inner_->GenerateInto(context, seed, store);
  }

 private:
  Status CheckSeed(uint64_t seed) const {
    for (uint64_t denied : deny_) {
      if (seed == denied) return Status::Internal("injected replica fault");
    }
    return Status::Ok();
  }

  const EvolutionModel* inner_;
  std::vector<uint64_t> deny_;
};

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Get().DisarmAll(); }

  /// A fresh (empty) checkpoint directory unique to this test.
  std::string FreshDir() {
    const std::string dir =
        ::testing::TempDir() + "/culevo_resume_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir);
    return dir;
  }

  static SimulationConfig BaseConfig() {
    SimulationConfig config;
    config.replicas = 6;
    config.seed = 33;
    return config;
  }

  static CheckpointOptions Checkpointed(const std::string& dir,
                                        bool resume) {
    CheckpointOptions options;
    options.directory = dir;
    options.resume = resume;
    options.sync = false;
    return options;
  }
};

void ExpectBitIdentical(const SimulationResult& resumed,
                        const SimulationResult& golden) {
  EXPECT_EQ(resumed.ingredient_curve.values(),
            golden.ingredient_curve.values());
  EXPECT_EQ(resumed.category_curve.values(),
            golden.category_curve.values());
  ASSERT_EQ(resumed.replica_ingredient_curves.size(),
            golden.replica_ingredient_curves.size());
  for (size_t k = 0; k < golden.replica_ingredient_curves.size(); ++k) {
    EXPECT_EQ(resumed.replica_ingredient_curves[k].values(),
              golden.replica_ingredient_curves[k].values())
        << "replica " << k;
  }
  EXPECT_EQ(RunReportToJson(resumed.report),
            RunReportToJson(golden.report));
}

// The core guarantee, for every model the paper evaluates: interrupt a
// checkpointed run after k < replicas completed, resume, and the final
// aggregate curves and report are bit-identical to the same run never
// interrupted.
TEST_F(CheckpointResumeTest, ResumeEquivalenceForAllModels) {
  const Lexicon& lexicon = WorldLexicon();
  const auto cm_r = MakeCmR(&lexicon);
  const auto cm_c = MakeCmC(&lexicon);
  const auto cm_m = MakeCmM(&lexicon);
  const NullModel nm;
  const std::vector<const EvolutionModel*> models = {cm_r.get(), cm_c.get(),
                                                     cm_m.get(), &nm};
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  for (const EvolutionModel* model : models) {
    SimulationConfig config = BaseConfig();
    Result<SimulationResult> golden =
        RunSimulation(*model, context, lexicon, config);
    ASSERT_TRUE(golden.ok()) << model->name();

    // Interrupt mid-run, journaling as we go: the token trips during the
    // 4th generate call, so some prefix of the replicas completes and the
    // rest is cancelled. Resume must close the gap whatever the split.
    CancelToken token;
    InterruptModel interruptible(model, &token, 4);
    config.cancel = &token;
    config.checkpoint = Checkpointed(dir, false);
    Result<SimulationResult> interrupted =
        RunSimulation(interruptible, context, lexicon, config);
    EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled)
        << model->name();

    // Resume with the bare model and no cancellation.
    config.cancel = nullptr;
    config.checkpoint = Checkpointed(dir, true);
    Result<SimulationResult> resumed =
        RunSimulation(*model, context, lexicon, config);
    ASSERT_TRUE(resumed.ok()) << model->name();
    ExpectBitIdentical(resumed.value(), golden.value());
  }
}

TEST_F(CheckpointResumeTest, ResumeOfCompletedRunRecomputesNothing) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  Result<SimulationResult> golden =
      RunSimulation(model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  // All replicas restore; the FlakyModel denying *every* replica seed
  // proves no replica is re-generated.
  std::vector<uint64_t> all_seeds;
  for (int k = 0; k < config.replicas; ++k) {
    all_seeds.push_back(DeriveSeed(config.seed, static_cast<uint64_t>(k)));
  }
  FlakyModel deny_all(&model, all_seeds);
  config.checkpoint = Checkpointed(dir, true);
  Result<SimulationResult> resumed =
      RunSimulation(deny_all, context, lexicon, config);
  ASSERT_TRUE(resumed.ok());
  ExpectBitIdentical(resumed.value(), golden.value());
}

TEST_F(CheckpointResumeTest, ResumeWithMissingJournalIsFreshStart) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();

  SimulationConfig config = BaseConfig();
  Result<SimulationResult> golden =
      RunSimulation(model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  config.checkpoint = Checkpointed(FreshDir(), true);  // nothing to resume
  Result<SimulationResult> resumed =
      RunSimulation(model, context, lexicon, config);
  ASSERT_TRUE(resumed.ok());
  ExpectBitIdentical(resumed.value(), golden.value());
}

TEST_F(CheckpointResumeTest, ManifestMismatchesAreRefused) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  config.checkpoint = Checkpointed(dir, true);

  {  // Different base seed.
    SimulationConfig changed = config;
    changed.seed = 34;
    EXPECT_EQ(RunSimulation(model, context, lexicon, changed)
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  {  // Different replica count.
    SimulationConfig changed = config;
    changed.replicas = 7;
    EXPECT_EQ(RunSimulation(model, context, lexicon, changed)
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  {  // Different mining support.
    SimulationConfig changed = config;
    changed.mining.min_relative_support = 0.10;
    EXPECT_EQ(RunSimulation(model, context, lexicon, changed)
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  {  // Different corpus content (same shape, different popularity).
    CuisineContext changed_context = context;
    changed_context.popularity[0] = 0.25;
    EXPECT_EQ(RunSimulation(model, changed_context, lexicon, config)
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  // The matching run still resumes fine after all those refusals.
  EXPECT_TRUE(RunSimulation(model, context, lexicon, config).ok());
}

// Two CM-M instances print the same name; only ConfigFingerprint can tell
// them apart — the manifest must refuse cross-parameter resumes.
TEST_F(CheckpointResumeTest, SameNameDifferentParamsIsRefused) {
  const Lexicon& lexicon = WorldLexicon();
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  ModelParams params;
  params.policy = ReplacementPolicy::kMixture;
  params.mutations = 6;
  params.mixture_cross_prob = 0.5;
  const CopyMutateModel half(&lexicon, params);
  params.mixture_cross_prob = 0.9;
  const CopyMutateModel ninety(&lexicon, params);
  ASSERT_EQ(half.name(), ninety.name());
  ASSERT_NE(half.ConfigFingerprint(), ninety.ConfigFingerprint());

  SimulationConfig config = BaseConfig();
  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(half, context, lexicon, config).ok());

  config.checkpoint = Checkpointed(dir, true);
  EXPECT_EQ(RunSimulation(ninety, context, lexicon, config).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(RunSimulation(half, context, lexicon, config).ok());
}

TEST_F(CheckpointResumeTest, CorruptTailReRunsOnlyAffectedReplicas) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  Result<SimulationResult> golden =
      RunSimulation(model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  // Bit-flip the last replica record: the quarantine drops it, resume
  // re-runs that replica, and the final result is still bit-identical.
  const std::string path = dir + "/sim_nm_c0.journal";
  Result<std::string> raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string content = raw.value();
  const size_t last_record = content.rfind("kind=replica");
  ASSERT_NE(last_record, std::string::npos);
  content[last_record + 20] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  // Restored replicas must be 5 of 6: deny the five restored seeds to
  // prove only the quarantined replica is re-generated.
  std::vector<uint64_t> first_five;
  for (int k = 0; k < 5; ++k) {
    first_five.push_back(DeriveSeed(config.seed, static_cast<uint64_t>(k)));
  }
  FlakyModel deny_restored(&model, first_five);
  config.checkpoint = Checkpointed(dir, true);
  Result<SimulationResult> resumed =
      RunSimulation(deny_restored, context, lexicon, config);
  ASSERT_TRUE(resumed.ok());
  ExpectBitIdentical(resumed.value(), golden.value());
}

TEST_F(CheckpointResumeTest, CorruptManifestRefusesResume) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  const std::string path = dir + "/sim_nm_c0.journal";
  Result<std::string> raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string content = raw.value();
  const size_t manifest = content.find("kind=manifest");
  ASSERT_NE(manifest, std::string::npos);
  content[manifest] ^= 0x01;  // corrupts record 0 → nothing certifies the run
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  config.checkpoint = Checkpointed(dir, true);
  EXPECT_EQ(RunSimulation(model, context, lexicon, config).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointResumeTest, FormatVersionBumpRefusesResume) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  const std::string path = dir + "/sim_nm_c0.journal";
  Result<std::string> raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  std::string content = raw.value();
  const size_t eol = content.find('\n');
  content.replace(0, eol, JournalHeader(kJournalFormatVersion + 1));
  ASSERT_TRUE(WriteStringToFile(path, content).ok());

  config.checkpoint = Checkpointed(dir, true);
  EXPECT_EQ(RunSimulation(model, context, lexicon, config).status().code(),
            StatusCode::kFailedPrecondition);
}

// Satellite: RunReport continuity. An attempt that fails a replica
// permanently journals the incident; after resume, the merged ledger
// still shows the prior failure even though the replica then succeeded.
TEST_F(CheckpointResumeTest, PriorAttemptIncidentsSurviveResume) {
  const Lexicon& lexicon = WorldLexicon();
  const NullModel inner;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  config.replicas = 4;

  // Attempt 1: replica 1 fails permanently under fail-fast.
  FlakyModel flaky(&inner, {DeriveSeed(config.seed, 1)});
  config.checkpoint = Checkpointed(dir, false);
  Result<SimulationResult> attempt1 =
      RunSimulation(flaky, context, lexicon, config);
  EXPECT_EQ(attempt1.status().code(), StatusCode::kInternal);

  // Attempt 2 (resume, fault gone): completes, and the ledger reports the
  // prior attempt's incident alongside a fully-successful final state.
  config.checkpoint = Checkpointed(dir, true);
  Result<SimulationResult> attempt2 =
      RunSimulation(inner, context, lexicon, config);
  ASSERT_TRUE(attempt2.ok());
  const RunReport& report = attempt2->report;
  EXPECT_EQ(report.replicas_succeeded, 4);
  EXPECT_EQ(report.replicas_failed, 0);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].replica, 1);
  EXPECT_EQ(report.incidents[0].status.code(), StatusCode::kInternal);
  EXPECT_NE(report.incidents[0].status.message().find("injected"),
            std::string::npos);

  // And the curves still match an uninterrupted fault-free run.
  SimulationConfig plain = BaseConfig();
  plain.replicas = 4;
  Result<SimulationResult> golden =
      RunSimulation(inner, context, lexicon, plain);
  ASSERT_TRUE(golden.ok());
  EXPECT_EQ(attempt2->ingredient_curve.values(),
            golden->ingredient_curve.values());
}

TEST_F(CheckpointResumeTest, ParallelResumeMatchesSerialGolden) {
  const Lexicon& lexicon = WorldLexicon();
  const auto model = MakeCmR(&lexicon);
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  Result<SimulationResult> golden =
      RunSimulation(*model, context, lexicon, config);
  ASSERT_TRUE(golden.ok());

  CancelToken token;
  InterruptModel interruptible(model.get(), &token, 3);
  config.cancel = &token;
  config.checkpoint = Checkpointed(dir, false);
  ThreadPool pool(3);
  Result<SimulationResult> interrupted =
      RunSimulation(interruptible, context, lexicon, config, &pool);
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled);

  config.cancel = nullptr;
  config.checkpoint = Checkpointed(dir, true);
  Result<SimulationResult> resumed =
      RunSimulation(*model, context, lexicon, config, &pool);
  ASSERT_TRUE(resumed.ok());
  ExpectBitIdentical(resumed.value(), golden.value());
}

// --- Sweep-level checkpointing ---

const RecipeCorpus& SweepCorpus() {
  static const RecipeCorpus& corpus = []() -> const RecipeCorpus& {
    const Lexicon& lexicon = WorldLexicon();
    const CuisineId bn = CuisineFromCode("BN").value();
    const CuisineProfile profile = BuildCuisineProfile(lexicon, bn, 3);
    SynthConfig config;
    RecipeCorpus::Builder builder;
    CULEVO_CHECK_OK(
        SynthesizeCuisine(lexicon, profile, config, 400, &builder));
    return *new RecipeCorpus(builder.Build());
  }();
  return corpus;
}

TEST_F(CheckpointResumeTest, SweepResumesAtPointGranularity) {
  const CuisineId bn = CuisineFromCode("BN").value();
  const Lexicon& lexicon = WorldLexicon();
  ModelParams base;
  SimulationConfig config;
  config.replicas = 2;
  const std::vector<int> counts = {1, 4, 8};

  Result<std::vector<SweepPoint>> golden =
      SweepMutationCount(SweepCorpus(), bn, lexicon, counts, base, config);
  ASSERT_TRUE(golden.ok());

  // Interrupt after the first sweep point: the 3rd generate call belongs
  // to point 1 (2 replicas per point), so point 0 is journaled and point
  // 1 dies mid-flight.
  const std::string dir = FreshDir();
  SimulationConfig interrupted = config;
  interrupted.checkpoint = Checkpointed(dir, false);
  Failpoints::ArmSpec spec;
  spec.skip = 2;
  Failpoints::Get().Arm("sim.replica.generate", spec);
  Result<std::vector<SweepPoint>> partial = SweepMutationCount(
      SweepCorpus(), bn, lexicon, counts, base, interrupted);
  Failpoints::Get().DisarmAll();
  EXPECT_FALSE(partial.ok());

  // Resume completes the remaining points; every double is bit-identical.
  SimulationConfig resumed_config = config;
  resumed_config.checkpoint = Checkpointed(dir, true);
  Result<std::vector<SweepPoint>> resumed = SweepMutationCount(
      SweepCorpus(), bn, lexicon, counts, base, resumed_config);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->size(), golden->size());
  for (size_t i = 0; i < golden->size(); ++i) {
    EXPECT_EQ((*resumed)[i].value, (*golden)[i].value);
    EXPECT_EQ((*resumed)[i].mae_ingredient, (*golden)[i].mae_ingredient);
    EXPECT_EQ((*resumed)[i].mae_category, (*golden)[i].mae_category);
  }
}

TEST_F(CheckpointResumeTest, SweepWithChangedValuesIsRefused) {
  const CuisineId bn = CuisineFromCode("BN").value();
  const Lexicon& lexicon = WorldLexicon();
  ModelParams base;
  SimulationConfig config;
  config.replicas = 2;
  const std::string dir = FreshDir();

  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(SweepMutationCount(SweepCorpus(), bn, lexicon, {1, 4}, base,
                                 config)
                  .ok());

  config.checkpoint = Checkpointed(dir, true);
  EXPECT_EQ(SweepMutationCount(SweepCorpus(), bn, lexicon, {1, 8}, base,
                               config)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(SweepMutationCount(SweepCorpus(), bn, lexicon, {1, 4}, base,
                                 config)
                  .ok());
}

TEST_F(CheckpointResumeTest, CkptMetricsTrackResumes) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter* resumes = registry.counter("ckpt.resumes");
  obs::Counter* restored = registry.counter("ckpt.replicas_restored");
  const int64_t resumes0 = resumes->Value();
  const int64_t restored0 = restored->Value();

  const Lexicon& lexicon = WorldLexicon();
  const NullModel model;
  const CuisineContext context = SmallContext();
  const std::string dir = FreshDir();

  SimulationConfig config = BaseConfig();
  config.checkpoint = Checkpointed(dir, false);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());

  config.checkpoint = Checkpointed(dir, true);
  ASSERT_TRUE(RunSimulation(model, context, lexicon, config).ok());
  EXPECT_EQ(resumes->Value() - resumes0, 1);
  EXPECT_EQ(restored->Value() - restored0, config.replicas);
}

}  // namespace
}  // namespace culevo

#include "corpus/recipe_corpus.h"

#include <gtest/gtest.h>

namespace culevo {
namespace {

RecipeCorpus SmallCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(0, {3, 1, 2}).ok());
  EXPECT_TRUE(builder.Add(0, {2, 2, 5}).ok());  // Duplicate collapses.
  EXPECT_TRUE(builder.Add(1, {7}).ok());
  return builder.Build();
}

TEST(RecipeCorpusTest, BuilderSortsAndDeduplicates) {
  const RecipeCorpus corpus = SmallCorpus();
  ASSERT_EQ(corpus.num_recipes(), 3u);
  EXPECT_EQ(std::vector<IngredientId>(corpus.ingredients_of(0).begin(),
                                      corpus.ingredients_of(0).end()),
            (std::vector<IngredientId>{1, 2, 3}));
  EXPECT_EQ(std::vector<IngredientId>(corpus.ingredients_of(1).begin(),
                                      corpus.ingredients_of(1).end()),
            (std::vector<IngredientId>{2, 5}));
}

TEST(RecipeCorpusTest, RejectsEmptyAndBadCuisine) {
  RecipeCorpus::Builder builder;
  EXPECT_FALSE(builder.Add(0, {}).ok());
  EXPECT_FALSE(builder.Add(kNumCuisines, {1}).ok());
  EXPECT_EQ(builder.size(), 0u);
}

TEST(RecipeCorpusTest, RecipeViewFields) {
  const RecipeCorpus corpus = SmallCorpus();
  const RecipeView view = corpus.recipe(2);
  EXPECT_EQ(view.index, 2u);
  EXPECT_EQ(view.cuisine, 1);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.ingredients[0], 7);
}

TEST(RecipeCorpusTest, RecipesOfGroupsByCuisine) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_EQ(corpus.recipes_of(0), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(corpus.recipes_of(1), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(corpus.recipes_of(2).empty());
  EXPECT_EQ(corpus.num_recipes_in(0), 2u);
}

TEST(RecipeCorpusTest, UniqueIngredients) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_EQ(corpus.UniqueIngredients(0),
            (std::vector<IngredientId>{1, 2, 3, 5}));
  EXPECT_EQ(corpus.UniqueIngredients(),
            (std::vector<IngredientId>{1, 2, 3, 5, 7}));
  EXPECT_TRUE(corpus.UniqueIngredients(2).empty());
}

TEST(RecipeCorpusTest, MeanRecipeSize) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(0), 2.5);  // Sizes 3 and 2.
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(1), 1.0);
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(2), 0.0);
}

TEST(RecipeCorpusTest, TotalMentions) {
  EXPECT_EQ(SmallCorpus().total_mentions(), 6u);
}

TEST(RecipeCorpusTest, EmptyCorpus) {
  RecipeCorpus corpus;
  EXPECT_EQ(corpus.num_recipes(), 0u);
  EXPECT_TRUE(corpus.UniqueIngredients().empty());
}

TEST(RecipeCorpusTest, BuilderIsReusableAfterBuild) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1}).ok());
  const RecipeCorpus first = builder.Build();
  EXPECT_EQ(first.num_recipes(), 1u);
  ASSERT_TRUE(builder.Add(1, {2, 3}).ok());
  const RecipeCorpus second = builder.Build();
  EXPECT_EQ(second.num_recipes(), 1u);
  EXPECT_EQ(second.cuisine_of(0), 1);
}

}  // namespace
}  // namespace culevo

#include "corpus/recipe_corpus.h"

#include <gtest/gtest.h>

#include <utility>

namespace culevo {
namespace {

template <typename T>
std::vector<T> ToVec(std::span<const T> view) {
  return std::vector<T>(view.begin(), view.end());
}

RecipeCorpus SmallCorpus() {
  RecipeCorpus::Builder builder;
  EXPECT_TRUE(builder.Add(0, {3, 1, 2}).ok());
  EXPECT_TRUE(builder.Add(0, {2, 2, 5}).ok());  // Duplicate collapses.
  EXPECT_TRUE(builder.Add(1, {7}).ok());
  return builder.Build();
}

TEST(RecipeCorpusTest, BuilderSortsAndDeduplicates) {
  const RecipeCorpus corpus = SmallCorpus();
  ASSERT_EQ(corpus.num_recipes(), 3u);
  EXPECT_EQ(ToVec(corpus.ingredients_of(0)),
            (std::vector<IngredientId>{1, 2, 3}));
  EXPECT_EQ(ToVec(corpus.ingredients_of(1)),
            (std::vector<IngredientId>{2, 5}));
}

TEST(RecipeCorpusTest, SpanAddMatchesVectorAdd) {
  const std::vector<IngredientId> ingredients = {9, 4, 4, 6};
  RecipeCorpus::Builder builder;
  builder.Reserve(2, 8);
  ASSERT_TRUE(
      builder.Add(3, std::span<const IngredientId>(ingredients)).ok());
  ASSERT_TRUE(builder.Add(3, std::vector<IngredientId>{9, 4, 4, 6}).ok());
  const RecipeCorpus corpus = builder.Build();
  ASSERT_EQ(corpus.num_recipes(), 2u);
  EXPECT_EQ(ToVec(corpus.ingredients_of(0)), ToVec(corpus.ingredients_of(1)));
  EXPECT_EQ(ToVec(corpus.ingredients_of(0)),
            (std::vector<IngredientId>{4, 6, 9}));
}

TEST(RecipeCorpusTest, RejectsEmptyAndBadCuisine) {
  RecipeCorpus::Builder builder;
  EXPECT_FALSE(builder.Add(0, std::vector<IngredientId>{}).ok());
  EXPECT_FALSE(builder.Add(kNumCuisines, {1}).ok());
  EXPECT_FALSE(
      builder.Add(0, std::span<const IngredientId>()).ok());
  EXPECT_EQ(builder.size(), 0u);
}

TEST(RecipeCorpusTest, RecipeViewFields) {
  const RecipeCorpus corpus = SmallCorpus();
  const RecipeView view = corpus.recipe(2);
  EXPECT_EQ(view.index, 2u);
  EXPECT_EQ(view.cuisine, 1);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.ingredients[0], 7);
}

TEST(RecipeCorpusTest, RecipesOfGroupsByCuisine) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_EQ(ToVec(corpus.recipes_of(0)), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(ToVec(corpus.recipes_of(1)), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(corpus.recipes_of(2).empty());
  EXPECT_EQ(corpus.num_recipes_in(0), 2u);
}

TEST(RecipeCorpusTest, UniqueIngredients) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_EQ(ToVec(corpus.UniqueIngredients(0)),
            (std::vector<IngredientId>{1, 2, 3, 5}));
  EXPECT_EQ(ToVec(corpus.UniqueIngredients()),
            (std::vector<IngredientId>{1, 2, 3, 5, 7}));
  EXPECT_TRUE(corpus.UniqueIngredients(2).empty());
}

TEST(RecipeCorpusTest, MeanRecipeSize) {
  const RecipeCorpus corpus = SmallCorpus();
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(0), 2.5);  // Sizes 3 and 2.
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(1), 1.0);
  EXPECT_DOUBLE_EQ(corpus.MeanRecipeSize(2), 0.0);
}

TEST(RecipeCorpusTest, TotalMentions) {
  EXPECT_EQ(SmallCorpus().total_mentions(), 6u);
}

TEST(RecipeCorpusTest, EmptyCorpus) {
  RecipeCorpus corpus;
  EXPECT_EQ(corpus.num_recipes(), 0u);
  EXPECT_TRUE(corpus.UniqueIngredients().empty());
  EXPECT_FALSE(corpus.borrowed());
}

TEST(RecipeCorpusTest, BuilderIsReusableAfterBuild) {
  RecipeCorpus::Builder builder;
  ASSERT_TRUE(builder.Add(0, {1}).ok());
  const RecipeCorpus first = builder.Build();
  EXPECT_EQ(first.num_recipes(), 1u);
  ASSERT_TRUE(builder.Add(1, {2, 3}).ok());
  const RecipeCorpus second = builder.Build();
  EXPECT_EQ(second.num_recipes(), 1u);
  EXPECT_EQ(second.cuisine_of(0), 1);
}

// The span accessors must survive copies and moves: the views have to be
// re-pointed at the destination's own storage, never at the source's.
TEST(RecipeCorpusTest, CopyRebindsViews) {
  RecipeCorpus original = SmallCorpus();
  RecipeCorpus copy = original;
  original = RecipeCorpus();  // Destroy the source's storage.
  EXPECT_EQ(ToVec(copy.ingredients_of(0)),
            (std::vector<IngredientId>{1, 2, 3}));
  EXPECT_EQ(ToVec(copy.recipes_of(0)), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(ToVec(copy.UniqueIngredients()),
            (std::vector<IngredientId>{1, 2, 3, 5, 7}));
}

TEST(RecipeCorpusTest, MoveRebindsViews) {
  RecipeCorpus original = SmallCorpus();
  const RecipeCorpus moved = std::move(original);
  EXPECT_EQ(moved.num_recipes(), 3u);
  EXPECT_EQ(ToVec(moved.ingredients_of(1)), (std::vector<IngredientId>{2, 5}));
  EXPECT_EQ(ToVec(moved.UniqueIngredients(0)),
            (std::vector<IngredientId>{1, 2, 3, 5}));
}

// --- FromColumns: the borrowed-storage entry point must reject columns
// that are not a well-formed corpus (the loader relies on this as its last
// line of defense against crafted snapshots).

struct OwnedColumns {
  std::vector<IngredientId> flat;
  std::vector<uint32_t> offsets;
  std::vector<CuisineId> cuisines;
  std::array<std::vector<uint32_t>, kNumCuisines> shards;
  std::array<std::vector<IngredientId>, kNumCuisines + 1> unique;

  RecipeCorpus::ColumnViews Views() const {
    RecipeCorpus::ColumnViews views;
    views.flat = flat;
    views.offsets = offsets;
    views.cuisines = cuisines;
    for (int c = 0; c < kNumCuisines; ++c) {
      views.shards[static_cast<size_t>(c)] = shards[static_cast<size_t>(c)];
      views.unique[static_cast<size_t>(c)] = unique[static_cast<size_t>(c)];
    }
    views.unique[kNumCuisines] = unique[kNumCuisines];
    return views;
  }
};

OwnedColumns SmallColumns() {
  OwnedColumns columns;
  columns.flat = {1, 2, 3, 2, 5, 7};
  columns.offsets = {0, 3, 5, 6};
  columns.cuisines = {0, 0, 1};
  columns.shards[0] = {0, 1};
  columns.shards[1] = {2};
  columns.unique[0] = {1, 2, 3, 5};
  columns.unique[1] = {7};
  columns.unique[kNumCuisines] = {1, 2, 3, 5, 7};
  return columns;
}

TEST(RecipeCorpusFromColumnsTest, AcceptsWellFormedColumns) {
  const OwnedColumns columns = SmallColumns();
  Result<RecipeCorpus> corpus =
      RecipeCorpus::FromColumns(columns.Views(), nullptr);
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  EXPECT_TRUE(corpus->borrowed() == false);  // Null backing: views only.
  EXPECT_EQ(corpus->num_recipes(), 3u);
  EXPECT_EQ(ToVec(corpus->ingredients_of(0)),
            (std::vector<IngredientId>{1, 2, 3}));
  EXPECT_EQ(ToVec(corpus->recipes_of(0)), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(ToVec(corpus->UniqueIngredients()),
            (std::vector<IngredientId>{1, 2, 3, 5, 7}));
}

TEST(RecipeCorpusFromColumnsTest, RejectsNonMonotonicOffsets) {
  OwnedColumns columns = SmallColumns();
  columns.offsets = {0, 5, 3, 6};
  EXPECT_FALSE(RecipeCorpus::FromColumns(columns.Views(), nullptr).ok());
}

TEST(RecipeCorpusFromColumnsTest, RejectsUnsortedRecipe) {
  OwnedColumns columns = SmallColumns();
  columns.flat = {3, 2, 1, 2, 5, 7};  // Recipe 0 descending.
  EXPECT_FALSE(RecipeCorpus::FromColumns(columns.Views(), nullptr).ok());
}

TEST(RecipeCorpusFromColumnsTest, RejectsWrongShard) {
  OwnedColumns columns = SmallColumns();
  columns.shards[0] = {0};  // Recipe 1 missing from its shard.
  columns.shards[2] = {1};  // ...and filed under the wrong cuisine.
  EXPECT_FALSE(RecipeCorpus::FromColumns(columns.Views(), nullptr).ok());
}

TEST(RecipeCorpusFromColumnsTest, RejectsIncompleteUniqueList) {
  OwnedColumns columns = SmallColumns();
  columns.unique[0] = {1, 2, 3};  // 5 missing: downstream code would index
                                  // out of bounds off this list.
  EXPECT_FALSE(RecipeCorpus::FromColumns(columns.Views(), nullptr).ok());
}

TEST(RecipeCorpusFromColumnsTest, RejectsOversizedUniqueList) {
  OwnedColumns columns = SmallColumns();
  columns.unique[kNumCuisines] = {1, 2, 3, 5, 7, 9};  // 9 never used.
  EXPECT_FALSE(RecipeCorpus::FromColumns(columns.Views(), nullptr).ok());
}

}  // namespace
}  // namespace culevo

#include "lexicon/world_lexicon.h"

#include <gtest/gtest.h>

#include "corpus/cuisine.h"

namespace culevo {
namespace {

TEST(WorldLexiconTest, HasPaperScale) {
  const Lexicon& lexicon = WorldLexicon();
  EXPECT_EQ(lexicon.size(), 721u);       // Section II: 721 entities.
  EXPECT_EQ(lexicon.num_compounds(), 96u);  // Section II: 96 compounds.
}

TEST(WorldLexiconTest, AllCategoriesPopulated) {
  const Lexicon& lexicon = WorldLexicon();
  for (int i = 0; i < kNumCategories; ++i) {
    EXPECT_FALSE(lexicon.ids_in_category(CategoryFromIndex(i)).empty())
        << "empty category: " << CategoryName(CategoryFromIndex(i));
  }
}

TEST(WorldLexiconTest, SingletonReturnsSameInstance) {
  EXPECT_EQ(&WorldLexicon(), &WorldLexicon());
}

TEST(WorldLexiconTest, EveryTableOneIngredientResolves) {
  const Lexicon& lexicon = WorldLexicon();
  for (const CuisineInfo& info : WorldCuisines()) {
    for (std::string_view name : info.top_ingredients) {
      EXPECT_TRUE(lexicon.Find(name).has_value())
          << info.code << " ingredient missing: " << name;
    }
  }
}

TEST(WorldLexiconTest, KeyEntitiesAndCategories) {
  const Lexicon& lexicon = WorldLexicon();
  const auto expect_category = [&](const char* name, Category category) {
    const auto id = lexicon.Find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(lexicon.category(*id), category) << name;
  };
  expect_category("Tomato", Category::kVegetable);
  expect_category("Butter", Category::kDairy);
  expect_category("Chickpea", Category::kLegume);
  expect_category("Corn", Category::kMaize);
  expect_category("Flour", Category::kCereal);
  expect_category("Chicken", Category::kMeat);
  expect_category("Sesame", Category::kNutsAndSeeds);
  expect_category("Nori", Category::kPlant);
  expect_category("Salmon", Category::kFish);
  expect_category("Shrimp", Category::kSeafood);
  expect_category("Cumin", Category::kSpice);
  expect_category("Tortilla", Category::kBakery);
  expect_category("Sake", Category::kBeverageAlcoholic);
  expect_category("Coffee", Category::kBeverage);
  expect_category("Olive Oil", Category::kEssentialOil);
  expect_category("Hibiscus", Category::kFlower);
  expect_category("Olive", Category::kFruit);
  expect_category("Mushroom", Category::kFungus);
  expect_category("Basil", Category::kHerb);
  expect_category("Salt", Category::kAdditive);
  expect_category("Pesto", Category::kDish);
}

TEST(WorldLexiconTest, AliasSpotChecks) {
  const Lexicon& lexicon = WorldLexicon();
  EXPECT_EQ(lexicon.Find("soy sauce"), lexicon.Find("Soybean Sauce"));
  EXPECT_EQ(lexicon.Find("prawns"), lexicon.Find("Shrimp"));
  EXPECT_EQ(lexicon.Find("coriander leaves"), lexicon.Find("Cilantro"));
  EXPECT_EQ(lexicon.Find("garbanzo beans"), lexicon.Find("Chickpea"));
  EXPECT_EQ(lexicon.Find("aubergine"), lexicon.Find("Eggplant"));
  EXPECT_EQ(lexicon.Find("black pepper"), lexicon.Find("Pepper"));
}

TEST(WorldLexiconTest, CompoundEntitiesWinLongestMatch) {
  const Lexicon& lexicon = WorldLexicon();
  const std::vector<IngredientId> resolved =
      lexicon.ResolveMention("ginger garlic paste");
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(lexicon.name(resolved[0]), "Ginger Garlic Paste");
  EXPECT_TRUE(lexicon.is_compound(resolved[0]));
}

TEST(WorldLexiconTest, TsvIsExposedAndParsable) {
  EXPECT_FALSE(WorldLexiconTsv().empty());
  EXPECT_NE(WorldLexiconTsv().find("Soybean Sauce"), std::string_view::npos);
}

}  // namespace
}  // namespace culevo

#include "util/cancel.h"

#include <gtest/gtest.h>

#include <thread>

namespace culevo {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.raw_nanos(), Deadline::kInfinite);
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline deadline = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, NonPositiveMillisAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
}

TEST(DeadlineTest, ShortDeadlineExpires) {
  const Deadline deadline = Deadline::AfterMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.expired());
}

TEST(CancelTokenTest, FreshTokenRuns) {
  CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.deadline_expired());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelTrips) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  // Idempotent.
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineTrips) {
  CancelToken token;
  token.set_deadline(Deadline::AfterMillis(0));
  EXPECT_TRUE(token.deadline_expired());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, ClearingDeadlineUntrips) {
  CancelToken token;
  token.set_deadline(Deadline::AfterMillis(0));
  EXPECT_TRUE(token.ShouldStop());
  token.set_deadline(Deadline::Infinite());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, ExplicitCancelWinsOverDeadline) {
  CancelToken token;
  token.set_deadline(Deadline::AfterMillis(0));
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DeadlineConstructor) {
  CancelToken token{Deadline::AfterMillis(0)};
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, NullTolerantHelpers) {
  EXPECT_FALSE(CancelToken::ShouldStop(nullptr));
  EXPECT_TRUE(CancelToken::Check(nullptr).ok());
  CancelToken token;
  EXPECT_FALSE(CancelToken::ShouldStop(&token));
  token.Cancel();
  EXPECT_TRUE(CancelToken::ShouldStop(&token));
  EXPECT_EQ(CancelToken::Check(&token).code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CancelVisibleAcrossThreads) {
  CancelToken token;
  std::thread controller([&token] { token.Cancel(); });
  controller.join();
  EXPECT_TRUE(token.ShouldStop());
}

}  // namespace
}  // namespace culevo

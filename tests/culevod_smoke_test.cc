// End-to-end smoke test of the culevod binary: spawn the real server on
// a temp Unix socket, run scripted queries through the wire protocol,
// SIGHUP it mid-session, then check a SIGTERM drains to a clean exit 0.
// The binary path is injected at compile time (CULEVOD_PATH).

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "service/protocol.h"
#include "util/strings.h"

namespace culevo {
namespace {

std::string SocketPath() {
  return testing::TempDir() + "culevod_smoke_" +
         std::to_string(::getpid()) + ".sock";
}

/// Connects with retries while the server starts up (synthesis plus
/// index build takes a moment; 15 s is far beyond the worst case).
int ConnectWithRetry(const std::string& path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  for (int attempt = 0; attempt < 150; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    ::usleep(100 * 1000);
  }
  return -1;
}

class CulevodSmokeTest : public ::testing::Test {
 protected:
  /// Extra culevod flags appended by subclass fixtures.
  virtual std::vector<std::string> ExtraArgs() const { return {}; }

  void SetUp() override {
    socket_path_ = SocketPath();
    // Tiny synthetic corpus keeps startup fast; two workers exercise
    // the multi-threaded accept path.
    std::vector<std::string> args = {
        "culevod", "--socket", socket_path_, "--scale", "0.02",
        "--threads", "2", "--deadline-ms", "60000"};
    for (const std::string& extra : ExtraArgs()) args.push_back(extra);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(CULEVOD_PATH, argv.data());
      ::_exit(127);  // exec failed
    }
    fd_ = ConnectWithRetry(socket_path_);
    ASSERT_GE(fd_, 0) << "could not connect to " << socket_path_;
  }

  void TearDown() override {
    if (fd_ >= 0) ::close(fd_);
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int ignored = 0;
      ::waitpid(pid_, &ignored, 0);
    }
    ::unlink(socket_path_.c_str());
  }

  /// One request/response round trip over the live socket.
  std::string Query(const std::string& request) {
    Status written = WriteFrame(fd_, request);
    EXPECT_TRUE(written.ok()) << written;
    std::string response;
    Status read = ReadFrame(fd_, &response);
    EXPECT_TRUE(read.ok()) << read;
    return response;
  }

  std::string socket_path_;
  pid_t pid_ = -1;
  int fd_ = -1;
};

TEST_F(CulevodSmokeTest, ScriptedQueriesThenCleanSigtermDrain) {
  EXPECT_EQ(Query("ping"), "ok 1\npong\n");

  const std::string info = Query("info");
  EXPECT_TRUE(StartsWith(info, "ok 6\n"));
  EXPECT_NE(info.find("source\t<synthetic>"), std::string::npos);
  EXPECT_NE(info.find("fingerprint\t"), std::string::npos);

  // `metrics` is served from the registry, no corpus involved.
  const std::string metrics = Query("metrics");
  EXPECT_TRUE(StartsWith(metrics, "ok "));
  EXPECT_NE(metrics.find("counter\tserve.requests\t"), std::string::npos);

  EXPECT_TRUE(StartsWith(Query("overrep ITA 3"), "ok 3\n"));
  EXPECT_TRUE(StartsWith(Query("nearest ITA 3"), "ok 3\n"));
  EXPECT_TRUE(StartsWith(Query("stats ITA"), "ok 5\n"));
  EXPECT_TRUE(StartsWith(Query("search garlic limit=2"), "ok "));
  EXPECT_TRUE(StartsWith(Query("recipe 0"), "ok 1\n"));
  EXPECT_TRUE(StartsWith(Query("bogus"), "error InvalidArgument"));
  EXPECT_TRUE(StartsWith(Query("ping deadline_ms=0"),
                         "error DeadlineExceeded"));

  // SIGHUP without a snapshot path is a harmless no-op reload request;
  // the server must keep answering afterwards.
  ASSERT_EQ(::kill(pid_, SIGHUP), 0);
  ::usleep(300 * 1000);
  EXPECT_EQ(Query("ping"), "ok 1\npong\n");

  // Clean drain: SIGTERM must produce a normal exit 0, not a signal
  // death, within the worker poll tick plus margin.
  ASSERT_EQ(::kill(pid_, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid_, &wstatus, 0), pid_);
  EXPECT_TRUE(WIFEXITED(wstatus))
      << "culevod died on a signal instead of draining";
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  pid_ = -1;

  // The drained server unlinks its socket.
  EXPECT_NE(::access(socket_path_.c_str(), F_OK), 0);
}

// Clients that vanish mid-exchange must cost the server nothing worse
// than an EPIPE on the response write. Without the SIGPIPE guard the
// very first such write would kill the process (default disposition is
// terminate), so twenty abrupt disconnects followed by one healthy
// round trip is a sharp regression test for the guard.
TEST_F(CulevodSmokeTest, AbruptClientDisconnectsDoNotKillServer) {
  EXPECT_EQ(Query("ping"), "ok 1\npong\n");

  for (int i = 0; i < 20; ++i) {
    const int victim = ConnectWithRetry(socket_path_);
    ASSERT_GE(victim, 0);
    // A query whose response is large enough to make the server's write
    // hit the closed socket, then hang up without reading a byte.
    ASSERT_TRUE(WriteFrame(victim, "overrep ITA 10").ok());
    ::close(victim);
  }

  // The server must still be alive and answering. (A SIGPIPE death
  // would show up as a failed connect or a dead pid.)
  ::usleep(200 * 1000);
  ASSERT_EQ(::kill(pid_, 0), 0) << "culevod died after client hangups";
  const int fresh = ConnectWithRetry(socket_path_);
  ASSERT_GE(fresh, 0);
  ASSERT_TRUE(WriteFrame(fresh, "ping").ok());
  std::string response;
  const Status read = ReadFrame(fresh, &response, 10000);
  EXPECT_TRUE(read.ok()) << read;
  EXPECT_EQ(response, "ok 1\npong\n");
  ::close(fresh);
}

class CulevodClientTimeoutTest : public CulevodSmokeTest {
 protected:
  std::vector<std::string> ExtraArgs() const override {
    return {"--client-read-timeout-ms", "300"};
  }
};

// A client that starts a frame and stalls must lose only its own
// connection — after the read deadline the server closes it, and the
// freed worker thread keeps serving fresh connections.
TEST_F(CulevodClientTimeoutTest, MidFrameStallClosesOnlyThatConnection) {
  EXPECT_EQ(Query("ping"), "ok 1\npong\n");

  // Begin a frame claiming 16 payload bytes, then send nothing more.
  const char prefix[4] = {16, 0, 0, 0};
  ASSERT_EQ(::write(fd_, prefix, sizeof(prefix)), 4);

  // The server must give up within its 300 ms deadline and close the
  // connection: the client sees EOF (NotFound) instead of hanging. The
  // client-side timeout here is only a hang guard for the test.
  std::string response;
  const Status stalled = ReadFrame(fd_, &response, 10000);
  EXPECT_EQ(stalled.code(), StatusCode::kNotFound) << stalled;

  // The worker thread is free again: a new connection still serves.
  const int fresh = ConnectWithRetry(socket_path_);
  ASSERT_GE(fresh, 0);
  ASSERT_TRUE(WriteFrame(fresh, "ping").ok());
  const Status read = ReadFrame(fresh, &response, 10000);
  EXPECT_TRUE(read.ok()) << read;
  EXPECT_EQ(response, "ok 1\npong\n");
  ::close(fresh);
}

}  // namespace
}  // namespace culevo

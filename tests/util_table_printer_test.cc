#include "util/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace culevo {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xxxx", "1"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  // Header, separator, one data row.
  EXPECT_NE(text.find("A     LongHeader"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("xxxx  1"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"A", "B", "C"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace culevo

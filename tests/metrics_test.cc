#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics_json.h"
#include "obs/scoped_timer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace culevo {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(10.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.0);
  gauge.Add(2.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 12.0);
  gauge.Set(3.0);  // collapses any sharded deltas
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
}

TEST(HistogramTest, RecordsBasicStats) {
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Record(4.0);
  const obs::HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 3);
  EXPECT_DOUBLE_EQ(stats.sum, 7.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_NEAR(stats.mean(), 7.0 / 3.0, 1e-12);
  // Quantiles are bucketed estimates clamped to the observed max.
  EXPECT_GE(stats.Quantile(0.5), 1.0);
  EXPECT_LE(stats.Quantile(0.99), 4.0);
}

TEST(HistogramTest, QuantilesTrackExactQuantilesOnSeededSample) {
  // Regression for the percentile collapse: with coarse power-of-two
  // buckets the old estimator reported the bucket upper bound, so a heavy
  // tail pushed p90/p99 to max and p50 to a bound far from the true
  // median. Interpolation must land every quantile within its bucket's 2x
  // width of the exact value computed from the raw sample.
  Rng rng(123457);
  Histogram histogram;
  std::vector<double> samples;
  // Log-uniform spread over ~0.01..160 ms plus a heavy tail, mimicking
  // the mine.eclat.ms shape that motivated the fix.
  for (int i = 0; i < 5000; ++i) {
    const double u = static_cast<double>(rng.NextBounded(1000000)) / 1e6;
    const double v = 0.01 * std::pow(2.0, u * 14.0);
    samples.push_back(v);
    histogram.Record(v);
  }
  // One extreme straggler several buckets above the bulk, so max sits in
  // a bucket of its own and the p90/p99 ranks stay in the dense region.
  samples.push_back(6144.0);
  histogram.Record(6144.0);
  std::sort(samples.begin(), samples.end());
  const obs::HistogramStats stats = histogram.Snapshot();
  for (const double q : {0.5, 0.9, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(samples.size()))) - 1;
    const double exact = samples[rank];
    const double estimate = stats.Quantile(q);
    // Within one bucket (factor of 2) of the exact quantile, both sides.
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
  }
  // The collapse symptom: p90 and p99 pinned at max. With a spread sample
  // they must now sit strictly below it (and p50 strictly below p99).
  EXPECT_LT(stats.Quantile(0.9), stats.max);
  EXPECT_LT(stats.Quantile(0.99), stats.max);
  EXPECT_LT(stats.Quantile(0.5), stats.Quantile(0.99));
}

TEST(HistogramTest, QuantileInterpolatesWithinOneBucket) {
  // 100 samples in the (1, 2] ms bucket, log-uniform-ish by construction:
  // p50 must fall inside the bucket, not at its upper edge, and the
  // extreme quantiles clamp to the observed min/max.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.Record(1.0 + static_cast<double>(i) / 100.0);
  }
  const obs::HistogramStats stats = histogram.Snapshot();
  const double p50 = stats.Quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LT(p50, 2.0);  // Strictly inside the bucket: interpolated.
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), stats.max);
  EXPECT_GE(stats.Quantile(0.0), stats.min);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram histogram;
  const obs::HistogramStats stats = histogram.Snapshot();
  EXPECT_EQ(stats.count, 0);
  EXPECT_DOUBLE_EQ(stats.sum, 0.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BucketBoundsAreExponential) {
  EXPECT_DOUBLE_EQ(Histogram::UpperBoundMs(10), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::UpperBoundMs(11), 2.0);
  // Sub-microsecond and non-positive samples land in bucket 0.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-5.0), 0u);
  // Values just above a bound move to the next bucket.
  EXPECT_EQ(Histogram::BucketFor(1.0), 10u);
  EXPECT_EQ(Histogram::BucketFor(1.5), 11u);
  // Huge values saturate in the final bucket.
  EXPECT_EQ(Histogram::BucketFor(1e12), obs::kHistogramBuckets - 1);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* a = registry.counter("test.registry.counter_a");
  EXPECT_EQ(a, registry.counter("test.registry.counter_a"));
  a->Reset();
  a->Increment(7);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.counters.count("test.registry.counter_a"));
  EXPECT_EQ(snapshot.counters.at("test.registry.counter_a"), 7);
}

TEST(MetricsRegistryTest, SnapshotRoundTripAllKinds) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.counter("test.rt.counter")->Reset();
  registry.counter("test.rt.counter")->Increment(3);
  registry.gauge("test.rt.gauge")->Set(1.5);
  Histogram* histogram = registry.histogram("test.rt.hist");
  histogram->Reset();
  histogram->Record(2.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("test.rt.counter"), 3);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("test.rt.gauge"), 1.5);
  EXPECT_EQ(snapshot.histograms.at("test.rt.hist").count, 1);
  EXPECT_DOUBLE_EQ(snapshot.histograms.at("test.rt.hist").sum, 2.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsFromThreadPoolWorkers) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter* counter = registry.counter("test.concurrent.counter");
  Gauge* gauge = registry.gauge("test.concurrent.gauge");
  Histogram* histogram = registry.histogram("test.concurrent.hist");
  counter->Reset();
  gauge->Reset();
  histogram->Reset();

  constexpr int kTasks = 2000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t i) {
    counter->Increment();
    gauge->Add(1.0);
    histogram->Record(static_cast<double>(i % 7) + 0.5);
  });

  EXPECT_EQ(counter->Value(), kTasks);
  EXPECT_DOUBLE_EQ(gauge->Value(), static_cast<double>(kTasks));
  const obs::HistogramStats stats = histogram->Snapshot();
  EXPECT_EQ(stats.count, kTasks);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 6.5);
  int64_t bucket_total = 0;
  for (int64_t b : stats.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTasks);
}

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  Histogram histogram;
  {
    obs::ScopedTimer timer(&histogram);
    EXPECT_GE(timer.ElapsedMillis(), 0.0);
  }
  EXPECT_EQ(histogram.Snapshot().count, 1);
  // Null histogram disables recording and must not crash.
  { obs::ScopedTimer disabled(nullptr); }
}

TEST(MetricsJsonTest, SnapshotSerializesToValidJson) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.counter("test.json.counter")->Reset();
  registry.counter("test.json.counter")->Increment(5);
  registry.gauge("test.json.gauge")->Set(2.25);
  registry.histogram("test.json.hist")->Reset();
  registry.histogram("test.json.hist")->Record(1.0);

  const std::string json =
      obs::MetricsSnapshotToJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  // Structural sanity: balanced braces, object document.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace culevo
